package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline hop an epoch batch passes through:
// client answer generation, batcher flush, proxy/transport publish,
// broker poll + aggregator drain, the shard join/decrypt/decode tail,
// and the window fire.
type Stage uint8

const (
	StageAnswer  Stage = iota // clients compute + split answers
	StageFlush                // batcher flush to proxies
	StagePublish              // proxy/transport → broker publish
	StageDrain                // consumer poll → aggregator submit
	StageJoin                 // aggregator join/decrypt/decode tail
	StageFire                 // window fire + result emit
	numStages
)

// NumStages is the number of pipeline stages; Stage values range over
// [0, NumStages). Exported for consumers (the lineage plane) that copy
// per-stage totals into their own structures.
const NumStages = numStages

var stageNames = [numStages]string{
	StageAnswer:  "answer",
	StageFlush:   "flush",
	StagePublish: "publish",
	StageDrain:   "drain",
	StageJoin:    "join",
	StageFire:    "fire",
}

// String returns the stage's instrument label.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// stageCell is the per-(epoch, stage) accumulator: total busy
// nanoseconds, number of recorded events, units processed (shares,
// messages), and the maximum queue depth seen behind the stage.
type stageCell struct {
	ns     atomic.Int64
	events atomic.Int64
	units  atomic.Int64
	depth  atomic.Int64 // max
}

func (c *stageCell) record(d time.Duration, units, depth int) {
	c.ns.Add(int64(d))
	c.events.Add(1)
	c.units.Add(int64(units))
	for {
		cur := c.depth.Load()
		if int64(depth) <= cur || c.depth.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

func (c *stageCell) reset() {
	c.ns.Store(0)
	c.events.Store(0)
	c.units.Store(0)
	c.depth.Store(0)
}

// spanRing is the number of epochs whose spans stay resident; older
// slots are recycled in place.
const spanRing = 64

// spanSlot holds one epoch's stage cells. key is epoch+1 (0 = empty)
// so epoch 0 is representable.
type spanSlot struct {
	key    atomic.Uint64
	stages [numStages]stageCell
}

// fireRing bounds the retained window-fire spans.
const fireRing = 256

// FireSpan is one fired window: which query, which window bounds, how
// many randomized responses it aggregated, the watermark lag at fire
// time, and how long the fire (estimate + emit) took. Keyed by
// (Epoch, Query, WindowStart).
type FireSpan struct {
	Epoch       uint64
	Query       string
	WindowStart int64 // unix ns
	WindowEnd   int64 // unix ns
	Responses   int64
	Lag         time.Duration
	Dur         time.Duration
}

// StageSpan is the snapshot of one stage within one epoch.
type StageSpan struct {
	Stage    Stage
	Busy     time.Duration
	Events   int64
	Units    int64
	MaxDepth int64
}

// EpochSpan is the snapshot of one epoch's trip through the pipeline.
type EpochSpan struct {
	Epoch  uint64
	Stages [int(numStages)]StageSpan
}

// Tracer records epoch trace spans with zero allocation on the hot
// path: Record is a ring-slot lookup plus atomic adds. The driver
// calls BeginEpoch once per epoch; stages call Record with whatever
// epoch they are processing. Window fires go through RecordFire, which
// takes a short mutex on a preallocated ring (the fire path is already
// serialized and low-rate). A Tracer is also a Source, exporting
// cumulative per-stage totals.
type Tracer struct {
	epoch  atomic.Uint64 // current epoch + 1
	slots  [spanRing]spanSlot
	totals [numStages]stageCell

	fireMu    sync.Mutex
	fires     [fireRing]FireSpan
	fireNext  int
	fireCount int64
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// BeginEpoch marks e as the current epoch and claims its ring slot,
// resetting whatever older epoch occupied it.
func (t *Tracer) BeginEpoch(e uint64) {
	t.epoch.Store(e + 1)
	slot := &t.slots[e%spanRing]
	if slot.key.Load() != e+1 {
		for i := range slot.stages {
			slot.stages[i].reset()
		}
		slot.key.Store(e + 1)
	}
}

// Epoch returns the current epoch (the last BeginEpoch argument).
func (t *Tracer) Epoch() uint64 {
	e := t.epoch.Load()
	if e == 0 {
		return 0
	}
	return e - 1
}

// Record charges d of busy time, units processed, and an observed
// queue depth to stage st of epoch e. 0 allocs/op; concurrent-safe.
// Records against an epoch more than spanRing behind the current one
// land on a recycled slot and are charged to totals only.
func (t *Tracer) Record(e uint64, st Stage, d time.Duration, units, depth int) {
	if st >= numStages {
		return
	}
	t.totals[st].record(d, units, depth)
	slot := &t.slots[e%spanRing]
	if slot.key.Load() == e+1 {
		slot.stages[st].record(d, units, depth)
	}
}

// RecordCurrent is Record against the current epoch — for stages that
// do not thread the epoch number through their call path.
func (t *Tracer) RecordCurrent(st Stage, d time.Duration, units, depth int) {
	t.Record(t.Epoch(), st, d, units, depth)
}

// TotalBusy returns the cumulative busy time charged to stage st
// across all epochs — the in-process latency legs a result card
// carries alongside its cross-process stamp timing.
func (t *Tracer) TotalBusy(st Stage) time.Duration {
	if st >= numStages {
		return 0
	}
	return time.Duration(t.totals[st].ns.Load())
}

// RecordFire appends one fired-window span to the fire ring (newest
// wins on wrap) and charges its duration to the fire stage of the
// span's epoch.
func (t *Tracer) RecordFire(f FireSpan) {
	t.Record(f.Epoch, StageFire, f.Dur, int(f.Responses), 0)
	t.fireMu.Lock()
	t.fires[t.fireNext] = f
	t.fireNext = (t.fireNext + 1) % fireRing
	t.fireCount++
	t.fireMu.Unlock()
}

// Spans appends a snapshot of every resident epoch span to dst,
// oldest epoch first.
func (t *Tracer) Spans(dst []EpochSpan) []EpochSpan {
	start := len(dst)
	for i := range t.slots {
		slot := &t.slots[i]
		key := slot.key.Load()
		if key == 0 {
			continue
		}
		es := EpochSpan{Epoch: key - 1}
		for s := range slot.stages {
			c := &slot.stages[s]
			es.Stages[s] = StageSpan{
				Stage:    Stage(s),
				Busy:     time.Duration(c.ns.Load()),
				Events:   c.events.Load(),
				Units:    c.units.Load(),
				MaxDepth: c.depth.Load(),
			}
		}
		dst = append(dst, es)
	}
	sortSpans(dst[start:])
	return dst
}

func sortSpans(spans []EpochSpan) {
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j-1].Epoch > spans[j].Epoch; j-- {
			spans[j-1], spans[j] = spans[j], spans[j-1]
		}
	}
}

// Fires appends the retained window-fire spans to dst, oldest first.
func (t *Tracer) Fires(dst []FireSpan) []FireSpan {
	t.fireMu.Lock()
	defer t.fireMu.Unlock()
	n := t.fireCount
	if n > fireRing {
		n = fireRing
	}
	first := (t.fireNext - int(n) + fireRing) % fireRing
	for i := int64(0); i < n; i++ {
		dst = append(dst, t.fires[(first+int(i))%fireRing])
	}
	return dst
}

// AppendSamples exports the cumulative per-stage totals, making the
// Tracer a Source: busy nanoseconds, event and unit counts as
// counters, and the high-water queue depth as a gauge, one series per
// stage labeled stage="...".
func (t *Tracer) AppendSamples(dst []Sample) []Sample {
	for s := range t.totals {
		c := &t.totals[s]
		name := stageNames[s]
		dst = append(dst,
			Sample{Name: "privapprox_stage_busy_ns_total", LabelKey: "stage", LabelValue: name, Value: float64(c.ns.Load()), Kind: KindCounter},
			Sample{Name: "privapprox_stage_events_total", LabelKey: "stage", LabelValue: name, Value: float64(c.events.Load()), Kind: KindCounter},
			Sample{Name: "privapprox_stage_units_total", LabelKey: "stage", LabelValue: name, Value: float64(c.units.Load()), Kind: KindCounter},
			Sample{Name: "privapprox_stage_depth_max", LabelKey: "stage", LabelValue: name, Value: float64(c.depth.Load()), Kind: KindGauge},
		)
	}
	dst = append(dst, Sample{Name: "privapprox_epoch_current", Value: float64(t.Epoch()), Kind: KindGauge})
	t.fireMu.Lock()
	fired := t.fireCount
	t.fireMu.Unlock()
	dst = append(dst, Sample{Name: "privapprox_windows_fired_total", Value: float64(fired), Kind: KindCounter})
	return dst
}
