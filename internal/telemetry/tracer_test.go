package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	tr.BeginEpoch(0)
	tr.Record(0, StageAnswer, 5*time.Millisecond, 100, 0)
	tr.Record(0, StageDrain, 2*time.Millisecond, 200, 64)
	tr.Record(0, StageDrain, 1*time.Millisecond, 50, 32)
	tr.BeginEpoch(1)
	tr.RecordCurrent(StageJoin, 3*time.Millisecond, 400, 8)
	if got := tr.Epoch(); got != 1 {
		t.Fatalf("Epoch() = %d, want 1", got)
	}

	spans := tr.Spans(nil)
	if len(spans) != 2 || spans[0].Epoch != 0 || spans[1].Epoch != 1 {
		t.Fatalf("spans = %+v, want epochs 0,1", spans)
	}
	d := spans[0].Stages[StageDrain]
	if d.Busy != 3*time.Millisecond || d.Events != 2 || d.Units != 250 || d.MaxDepth != 64 {
		t.Fatalf("drain span = %+v", d)
	}
	if j := spans[1].Stages[StageJoin]; j.Units != 400 {
		t.Fatalf("join span = %+v", j)
	}
}

func TestTracerRingRecycles(t *testing.T) {
	tr := NewTracer()
	for e := uint64(0); e < spanRing+5; e++ {
		tr.BeginEpoch(e)
		tr.Record(e, StageAnswer, time.Microsecond, 1, 0)
	}
	spans := tr.Spans(nil)
	if len(spans) != spanRing {
		t.Fatalf("resident spans = %d, want %d", len(spans), spanRing)
	}
	if spans[0].Epoch != 5 || spans[len(spans)-1].Epoch != spanRing+4 {
		t.Fatalf("span range [%d,%d], want [5,%d]", spans[0].Epoch, spans[len(spans)-1].Epoch, spanRing+4)
	}
	// A record against a recycled epoch must not corrupt the slot's
	// current tenant, but still lands in the totals.
	before := tr.totals[StageAnswer].events.Load()
	tr.Record(1, StageAnswer, time.Microsecond, 1, 0)
	if got := tr.totals[StageAnswer].events.Load(); got != before+1 {
		t.Fatalf("stale record missing from totals: %d, want %d", got, before+1)
	}
	for _, s := range tr.Spans(nil) {
		if s.Epoch == spanRing+1 && s.Stages[StageAnswer].Events != 1 {
			t.Fatalf("stale epoch-1 record leaked into epoch %d slot", s.Epoch)
		}
	}
}

func TestTracerFires(t *testing.T) {
	tr := NewTracer()
	tr.BeginEpoch(3)
	for i := 0; i < fireRing+10; i++ {
		tr.RecordFire(FireSpan{
			Epoch: 3, Query: "taxi", WindowStart: int64(i),
			Responses: 10, Dur: time.Millisecond,
		})
	}
	fires := tr.Fires(nil)
	if len(fires) != fireRing {
		t.Fatalf("fires = %d, want %d", len(fires), fireRing)
	}
	if fires[0].WindowStart != 10 || fires[len(fires)-1].WindowStart != fireRing+9 {
		t.Fatalf("fire ring window [%d,%d], want [10,%d]", fires[0].WindowStart, fires[len(fires)-1].WindowStart, fireRing+9)
	}
	var fired float64
	for _, s := range tr.AppendSamples(nil) {
		if s.Name == "privapprox_windows_fired_total" {
			fired = s.Value
		}
	}
	if fired != fireRing+10 {
		t.Fatalf("windows_fired_total = %v, want %d", fired, fireRing+10)
	}
}

func TestTracerStageSamples(t *testing.T) {
	tr := NewTracer()
	tr.BeginEpoch(0)
	tr.Record(0, StagePublish, 7*time.Millisecond, 3, 12)
	got := map[string]float64{}
	for _, s := range tr.AppendSamples(nil) {
		if s.LabelValue == "publish" {
			got[s.Name] = s.Value
		}
	}
	if got["privapprox_stage_busy_ns_total"] != float64(7*time.Millisecond) ||
		got["privapprox_stage_events_total"] != 1 ||
		got["privapprox_stage_units_total"] != 3 ||
		got["privapprox_stage_depth_max"] != 12 {
		t.Fatalf("publish stage samples = %v", got)
	}
}

func TestTracerConcurrentRecordFire(t *testing.T) {
	tr := NewTracer()
	const goroutines, perG = 8, 3 * fireRing
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.RecordFire(FireSpan{
					Epoch: uint64(i), Query: "q", WindowStart: int64(g*perG + i),
					Responses: 1, Dur: time.Microsecond,
				})
			}
		}(g)
	}
	wg.Wait()
	fires := tr.Fires(nil)
	if len(fires) != fireRing {
		t.Fatalf("resident fires = %d, want %d", len(fires), fireRing)
	}
	seen := map[int64]bool{}
	for _, f := range fires {
		if f.Query != "q" || f.Responses != 1 {
			t.Fatalf("torn fire span: %+v", f)
		}
		if seen[f.WindowStart] {
			t.Fatalf("window %d appears twice in the ring", f.WindowStart)
		}
		seen[f.WindowStart] = true
	}
	var fired float64
	for _, s := range tr.AppendSamples(nil) {
		if s.Name == "privapprox_windows_fired_total" {
			fired = s.Value
		}
	}
	if fired != goroutines*perG {
		t.Fatalf("windows_fired_total = %v, want %d", fired, goroutines*perG)
	}
}
