package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// The bucket ladder: bucket i holds observations v (nanoseconds) with
// v < 256ns·2^i, i.e. upper bounds 256ns, 512ns, 1µs, ... ~549s over
// histBuckets buckets, with one overflow bucket above the last bound.
// Fixed at compile time so Observe is a bits.Len64 plus two atomic
// adds — no per-histogram configuration, no boxing, no allocation.
const (
	histBuckets = 32 // finite bounds
	histMinBits = 8  // first bound = 1 << histMinBits ns = 256ns
	histShards  = 4  // concurrent writers spread over shards
	shardMask   = histShards - 1
)

// histShard is one writer lane. The counts array spans several cache
// lines on its own, so lanes mostly avoid false sharing without
// explicit padding; sum and count ride the same lane as its buckets.
type histShard struct {
	counts [histBuckets + 1]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// Histogram is a sharded fixed-bucket latency histogram. Observe picks
// a shard from the low bits of a cheap multiplicative hash of the
// value, so concurrent writers recording different latencies land on
// different lanes; snapshot folds all lanes.
type Histogram struct {
	shards [histShards]histShard
	name   string
}

func newHistogram(name string) *Histogram {
	return &Histogram{name: name}
}

// Observe records one duration in nanoseconds. 0 allocs/op; safe for
// any number of concurrent callers.
func (h *Histogram) Observe(ns int64) {
	v := uint64(0)
	if ns > 0 {
		v = uint64(ns)
	}
	b := bucketOf(v)
	s := &h.shards[(v*0x9E3779B97F4A7C15)>>32&shardMask]
	s.counts[b].Add(1)
	s.sum.Add(ns)
	s.count.Add(1)
}

// bucketOf maps a nanosecond value to its bucket index: the number of
// significant bits above the ladder floor, clamped to the overflow
// bucket.
func bucketOf(v uint64) int {
	b := bits.Len64(v >> histMinBits)
	if b > histBuckets {
		return histBuckets
	}
	return b
}

// Name returns the series name.
func (h *Histogram) Name() string { return h.name }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.shards {
		n += h.shards[i].count.Load()
	}
	return n
}

// Sum returns the sum of all observed nanoseconds.
func (h *Histogram) Sum() int64 {
	var n int64
	for i := range h.shards {
		n += h.shards[i].sum.Load()
	}
	return n
}

// snapshot folds the shards into cumulative bucket counts aligned with
// Bounds(), plus total count and sum. Reads are atomic per cell but
// not cross-cell consistent — fine for monitoring, documented for
// tests.
func (h *Histogram) snapshot() (cum [histBuckets + 1]int64, count, sum int64) {
	var raw [histBuckets + 1]int64
	for i := range h.shards {
		s := &h.shards[i]
		for b := range raw {
			raw[b] += s.counts[b].Load()
		}
		count += s.count.Load()
		sum += s.sum.Load()
	}
	var running int64
	for b := range raw {
		running += raw[b]
		cum[b] = running
	}
	return cum, count, sum
}

// Bound returns the upper bound in nanoseconds of finite bucket i.
func Bound(i int) float64 {
	return float64(uint64(1) << (histMinBits + i))
}

// appendSamples expands the histogram into Prometheus-convention
// samples: name_bucket{le="..."} cumulative counts (including +Inf),
// name_sum, and name_count.
func (h *Histogram) appendSamples(dst []Sample) []Sample {
	cum, count, sum := h.snapshot()
	for i := 0; i < histBuckets; i++ {
		dst = append(dst, Sample{
			Name:       h.name + "_bucket",
			LabelKey:   "le",
			LabelValue: formatBound(Bound(i)),
			Value:      float64(cum[i]),
			Kind:       KindCounter,
		})
	}
	dst = append(dst, Sample{Name: h.name + "_bucket", LabelKey: "le", LabelValue: "+Inf", Value: float64(cum[histBuckets]), Kind: KindCounter})
	dst = append(dst, Sample{Name: h.name + "_sum", Value: float64(sum), Kind: KindCounter})
	dst = append(dst, Sample{Name: h.name + "_count", Value: float64(count), Kind: KindCounter})
	return dst
}

func floatBits(v float64) uint64   { return math.Float64bits(v) }
func floatFrom(b uint64) float64   { return math.Float64frombits(b) }
func formatBound(b float64) string { return trimFloat(b) }
