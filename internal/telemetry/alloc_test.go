package telemetry

import (
	"testing"
	"time"
)

// TestInstrumentZeroAllocs pins the hot-path contract of every
// mutation primitive at exactly 0 allocs/op: counters, gauges,
// histogram observation, span recording, and fire recording (whose
// ring is preallocated and whose Query field is a pre-existing string
// header, not a copy).
func TestInstrumentZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g_now")
	fg := r.FloatGauge("f_now")
	h := r.Histogram("h_ns")
	tr := NewTracer()
	tr.BeginEpoch(1)
	query := "taxi"
	cases := []struct {
		name string
		f    func()
	}{
		{"Counter.Add", func() { c.Add(2) }},
		{"Gauge.Set", func() { g.Set(9) }},
		{"Gauge.Max", func() { g.Max(11) }},
		{"FloatGauge.Set", func() { fg.Set(0.5) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"Tracer.Record", func() { tr.Record(1, StageJoin, time.Microsecond, 64, 7) }},
		{"Tracer.RecordCurrent", func() { tr.RecordCurrent(StageDrain, time.Microsecond, 64, 7) }},
		{"Tracer.BeginEpoch", func() { tr.BeginEpoch(1) }},
		{"Tracer.RecordFire", func() {
			tr.RecordFire(FireSpan{Epoch: 1, Query: query, WindowStart: 1, WindowEnd: 2, Responses: 5, Dur: time.Millisecond})
		}},
	}
	for _, tc := range cases {
		tc.f() // warm up
		if avg := testing.AllocsPerRun(100, tc.f); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, avg)
		}
	}
}
