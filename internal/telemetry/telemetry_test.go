package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryInstrumentsIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a_total")
	c2 := r.Counter("a_total")
	if c1 != c2 {
		t.Fatal("same name must return same counter")
	}
	c1.Add(3)
	c2.Inc()
	if got := c1.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.Max(9)
	g.Max(3)
	if got := g.Load(); got != 9 {
		t.Fatalf("gauge after Max = %d, want 9", got)
	}
	fg := r.FloatGauge("f")
	fg.Set(0.25)
	if got := fg.Load(); got != 0.25 {
		t.Fatalf("float gauge = %v, want 0.25", got)
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("registering x as a gauge after a counter must panic")
		}
		// The panic must name the offending instrument so the clash is
		// findable without a stack-trace archaeology session.
		if msg := fmt.Sprint(p); !strings.Contains(msg, `"x"`) {
			t.Fatalf("panic %q does not name the instrument", msg)
		}
	}()
	r.Gauge("x")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "2fast", "has space", "dash-ed", "percent%"} {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("registering %q must panic", name)
				}
				if msg := fmt.Sprint(p); !strings.Contains(msg, fmt.Sprintf("%q", name)) {
					t.Fatalf("panic %q does not name the bad metric %q", msg, name)
				}
			}()
			NewRegistry().Counter(name)
		}()
	}
	// The full Prometheus grammar must stay accepted.
	r := NewRegistry()
	for _, name := range []string{"a", "_lead", "ns:scoped_total", "privapprox_window_e2e_ns"} {
		r.Counter(name)
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	h.Observe(100)  // < 256 → bucket 0
	h.Observe(300)  // < 512 → bucket 1
	h.Observe(1000) // < 1024 → bucket 2
	h.Observe(1 << 50)
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	wantSum := int64(100 + 300 + 1000 + 1<<50)
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %d, want %d", got, wantSum)
	}
	cum, count, _ := h.snapshot()
	if count != 4 {
		t.Fatalf("snapshot count = %d, want 4", count)
	}
	if cum[0] != 1 || cum[1] != 2 || cum[2] != 3 {
		t.Fatalf("cumulative low buckets = %v %v %v, want 1 2 3", cum[0], cum[1], cum[2])
	}
	if cum[histBuckets] != 4 {
		t.Fatalf("+Inf bucket = %d, want 4", cum[histBuckets])
	}
	// The expanded samples must keep ascending bucket order through
	// Gather's sort.
	var le []string
	for _, s := range r.Gather() {
		if s.Name == "lat_ns_bucket" {
			le = append(le, s.LabelValue)
		}
	}
	if len(le) != histBuckets+1 || le[0] != "256" || le[1] != "512" || le[len(le)-1] != "+Inf" {
		t.Fatalf("bucket label order wrong: %v", le)
	}
}

func TestBucketOfEdges(t *testing.T) {
	if b := bucketOf(0); b != 0 {
		t.Fatalf("bucketOf(0) = %d", b)
	}
	if b := bucketOf(255); b != 0 {
		t.Fatalf("bucketOf(255) = %d", b)
	}
	if b := bucketOf(256); b != 1 {
		t.Fatalf("bucketOf(256) = %d", b)
	}
	if b := bucketOf(1 << 63); b != histBuckets {
		t.Fatalf("bucketOf(1<<63) = %d, want overflow", b)
	}
}

// TestConcurrentRegistrationAndSnapshot hammers the registry from
// three directions at once — new-instrument registration, hot-path
// writes on every shard, and Gather/WriteProm snapshots — and must be
// race-clean (the make ci race gate runs this package with -race).
func TestConcurrentRegistrationAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("busy_ns")
	c := r.Counter("ops_total")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				v = v*6364136223846793005 + 1442695040888963407
				h.Observe(v & 0xFFFFF)
				c.Inc()
			}
		}(int64(w + 1))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter(fmt.Sprintf("dyn_%d_%d_total", id, i%32)).Inc()
			}
		}(w)
	}
	deadline := time.After(200 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			if err := r.WriteProm(&strings.Builder{}); err != nil {
				t.Errorf("WriteProm: %v", err)
				done = true
			}
		}
	}
	close(stop)
	wg.Wait()
	samples := r.Gather()
	var total float64
	for _, s := range samples {
		if s.Name == "ops_total" {
			total = s.Value
		}
	}
	if total <= 0 {
		t.Fatalf("ops_total = %v after load", total)
	}
	if int64(total) != c.Load() {
		// Final gather runs after every writer stopped, so it must be
		// exact, not merely monotone.
		t.Fatalf("final snapshot %v != counter %d", total, c.Load())
	}
}

func TestSourceSamplesAppearInGather(t *testing.T) {
	r := NewRegistry()
	r.RegisterSource(SourceFunc(func(dst []Sample) []Sample {
		return append(dst, Sample{Name: "src_value", Value: 42, Kind: KindGauge})
	}))
	for _, s := range r.Gather() {
		if s.Name == "src_value" && s.Value == 42 {
			return
		}
	}
	t.Fatal("source sample missing from Gather")
}
