package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"privapprox/internal/budget"
	"privapprox/internal/minisql"
	"privapprox/internal/rr"
	"privapprox/internal/telemetry"
	"privapprox/internal/workload"
)

// sampleMap folds gathered samples into name{label=value} → value.
func sampleMap(samples []telemetry.Sample) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		key := s.Name
		if s.LabelKey != "" {
			key += "{" + s.LabelKey + "=" + s.LabelValue + "}"
		}
		out[key] = s.Value
	}
	return out
}

// TestSystemTelemetrySnapshot drives epochs through a fully wired
// system and asserts the snapshot API surfaces every plane: aggregator
// accounting, fleet-summed broker traffic, per-proxy backlog, client
// fleet counters, publish latency, tracer stage totals, and the
// fired-window span log.
func TestSystemTelemetrySnapshot(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}}
	sys, err := New(taxiSystemConfig(t, 30, params))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	for e := 0; e < 3; e++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Flush(); err != nil {
		t.Fatal(err)
	}

	got := sampleMap(sys.TelemetrySnapshot())
	// Exact counts at s=1: every client answers every epoch, one share
	// per proxy.
	if v := got["privapprox_agg_decoded_total"]; v != 90 {
		t.Errorf("agg_decoded_total = %v, want 90", v)
	}
	if v := got["privapprox_broker_messages_in_total"]; v != 180 {
		t.Errorf("broker_messages_in_total (fleet sum) = %v, want 180", v)
	}
	if v := got["privapprox_client_answers_sent_total"]; v != 90 {
		t.Errorf("client_answers_sent_total = %v, want 90", v)
	}
	// Presence of the remaining planes (values are timing-dependent).
	for _, name := range []string{
		"privapprox_proxy_backlog{proxy=0}",
		"privapprox_proxy_backlog{proxy=1}",
		"privapprox_publish_ns_count",
		"privapprox_stage_busy_ns_total{stage=answer}",
		"privapprox_stage_busy_ns_total{stage=drain}",
		"privapprox_stage_busy_ns_total{stage=join}",
		"privapprox_epoch_current",
		"privapprox_windows_fired_total",
		"privapprox_xorcrypt_split_batch_calls_total",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
	if v := got["privapprox_publish_ns_count"]; !(v > 0) {
		t.Errorf("publish_ns_count = %v, want > 0", v)
	}
	if v := got["privapprox_stage_events_total{stage=answer}"]; v != 3 {
		t.Errorf("answer stage events = %v, want 3 (one per epoch)", v)
	}
	if v := got["privapprox_stage_units_total{stage=answer}"]; v != 90 {
		t.Errorf("answer stage units = %v, want 90 participants", v)
	}
	if v := got["privapprox_windows_fired_total"]; !(v > 0) {
		t.Errorf("windows_fired_total = %v, want > 0", v)
	}

	// The fire span log carries (query, window, responses) for each
	// fired window, rendered without hot-path formatting.
	fires := sys.Tracer().Fires(nil)
	if len(fires) == 0 {
		t.Fatal("no fire spans recorded")
	}
	for _, f := range fires {
		if !strings.Contains(f.Query, "analyst:1") {
			t.Errorf("fire span query = %q, want analyst:1 id", f.Query)
		}
		if f.Responses <= 0 || f.WindowEnd <= f.WindowStart {
			t.Errorf("degenerate fire span: %+v", f)
		}
	}

	// Per-epoch spans: every driven epoch has an answer-stage record.
	spans := sys.Tracer().Spans(nil)
	if len(spans) != 3 {
		t.Fatalf("got %d epoch spans, want 3", len(spans))
	}
	for _, sp := range spans {
		if sp.Stages[telemetry.StageAnswer].Events != 1 {
			t.Errorf("epoch %d: answer events = %d, want 1", sp.Epoch, sp.Stages[telemetry.StageAnswer].Events)
		}
	}
}

// TestSystemTelemetryWALHistograms pins the durable-fleet wiring: a
// system with a DataDir must route proxy WAL append timings into the
// registry built before the fleet opened.
func TestSystemTelemetryWALHistograms(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}}
	cfg := taxiSystemConfig(t, 10, params)
	cfg.DataDir = t.TempDir()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, _, err := sys.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	got := sampleMap(sys.TelemetrySnapshot())
	if v := got["privapprox_wal_append_ns_count"]; !(v > 0) {
		t.Errorf("wal_append_ns_count = %v, want > 0 (durable proxies journal every publish)", v)
	}
}

// TestSystemTelemetrySLOAndControl exercises the MultiQuery planes:
// control-plane version/sink gauges and the SLO controllers' actuation
// state appear once the system runs in closed-loop mode.
func TestSystemTelemetrySLOAndControl(t *testing.T) {
	q, err := workload.TaxiQuery("analyst", 1, time.Second, 4*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	params := budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}}
	sys, err := New(Config{
		Clients:    20,
		Proxies:    2,
		Params:     &params,
		Seed:       42,
		MultiQuery: true,
		Populate: func(i int, db *minisql.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			return workload.PopulateTaxi(db, rng, 3, time.Unix(1000, 0), time.Minute)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Register(q); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableSLO(2.0, 0.2, 8); err != nil {
		t.Fatal(err)
	}
	// The SLO controller for a query materializes when its first window
	// fires; with a 4s window at 1s frequency the watermark-delayed
	// first fire lands at epoch 8.
	for e := 0; e < 9; e++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	got := sampleMap(sys.TelemetrySnapshot())
	if v := got["privapprox_control_version"]; !(v >= 1) {
		t.Errorf("control_version = %v, want >= 1", v)
	}
	if v, ok := got["privapprox_control_sink_version{sink=0}"]; !ok || !(v >= 1) {
		t.Errorf("control_sink_version{sink=0} = %v (present=%v), want >= 1", v, ok)
	}
	foundShed := false
	for key := range got {
		if strings.HasPrefix(key, "privapprox_slo_shed{query=") {
			foundShed = true
		}
	}
	if !foundShed {
		t.Errorf("no privapprox_slo_shed series; keys: %d samples", len(got))
	}
}
