package core

// System-level checkpoint/restore: the epoch counter, the drain
// consumers' input positions, and the aggregator's full dynamic state
// serialize into one record. Together with Config.DataDir (durable
// proxy brokers) this is the in-process statement of the crash-recovery
// protocol the networked privapprox-node deployment runs: checkpoint
// after a drain, crash at any point, rebuild the System over the same
// data directory, re-register the same queries, Restore, and continue —
// results from the resumed run are byte-identical to an uninterrupted
// one.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/query"
)

// Checkpoint magics: PSC2 adds the SLO overload-control section (flag
// byte, controller configuration, and per-query controller state)
// between the registration epochs and the aggregator section. PSC1
// records — written before overload control existed — are still
// accepted by Restore; they simply carry no SLO state.
var (
	sysCkptMagic   = []byte("PSC2")
	sysCkptMagicV1 = []byte("PSC1")
)

// Checkpoint serializes the system's resumable state. Call it between
// epochs (after RunEpoch returns), never concurrently with one.
func (s *System) Checkpoint() ([]byte, error) {
	if err := s.ensureConsumers(); err != nil {
		return nil, err
	}
	buf := append([]byte(nil), sysCkptMagic...)
	buf = binary.BigEndian.AppendUint64(buf, s.epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.consumers)))
	for _, c := range s.consumers {
		buf = c.AppendPositions(buf)
	}
	// Per-query registration epochs, so Restore can fast-forward each
	// client subscription through exactly the epochs it answered in the
	// previous life — a query registered mid-run never existed before
	// its registration epoch and must not have coins skipped for it.
	s.ctrlMu.Lock()
	regs := make([]regEpoch, 0, len(s.regEpochs))
	for id, e := range s.regEpochs {
		regs = append(regs, regEpoch{id: id, epoch: e})
	}
	s.ctrlMu.Unlock()
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].id.Analyst != regs[j].id.Analyst {
			return regs[i].id.Analyst < regs[j].id.Analyst
		}
		return regs[i].id.Serial < regs[j].id.Serial
	})
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(regs)))
	for _, r := range regs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.id.Analyst)))
		buf = append(buf, r.id.Analyst...)
		buf = binary.BigEndian.AppendUint64(buf, r.id.Serial)
		buf = binary.BigEndian.AppendUint64(buf, r.epoch)
	}
	buf = s.appendSLOState(buf)
	return s.agg.Checkpoint(buf)
}

// appendSLOState writes the PSC2 overload-control section: a flag byte,
// then (when SLO control is on) the controller configuration and every
// per-query controller's serialized state, sorted by query ID so the
// record is deterministic. The in-flight shed thresholds live inside
// the controller state — Restore re-actuates them, so a recovered
// system resumes shedding at the level the crashed one had reached.
func (s *System) appendSLOState(buf []byte) []byte {
	s.ctrlMu.Lock()
	defer s.ctrlMu.Unlock()
	if !s.sloEnabled {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.sloTarget))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.sloMin))
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.sloWindow))
	ids := make([]query.ID, 0, len(s.slos))
	for id := range s.slos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Analyst != ids[j].Analyst {
			return ids[i].Analyst < ids[j].Analyst
		}
		return ids[i].Serial < ids[j].Serial
	})
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(id.Analyst)))
		buf = append(buf, id.Analyst...)
		buf = binary.BigEndian.AppendUint64(buf, id.Serial)
		buf = s.slos[id].AppendState(buf)
	}
	return buf
}

// restoreSLOState parses the PSC2 overload-control section, reinstalls
// the controllers, and re-actuates each query's checkpointed shed
// threshold through the registry and aggregator. Returns the remaining
// bytes (the aggregator section).
func (s *System) restoreSLOState(d []byte) ([]byte, error) {
	if len(d) < 1 {
		return nil, fmt.Errorf("%w: short system checkpoint", ErrConfig)
	}
	enabled := d[0]
	d = d[1:]
	if enabled > 1 {
		return nil, fmt.Errorf("%w: bad SLO flag %d", ErrConfig, enabled)
	}
	if enabled == 0 {
		return d, nil
	}
	if !s.cfg.MultiQuery {
		return nil, fmt.Errorf("%w: checkpoint has SLO state but MultiQuery mode is off", ErrConfig)
	}
	if len(d) < 24 {
		return nil, fmt.Errorf("%w: short system checkpoint", ErrConfig)
	}
	target := math.Float64frombits(binary.BigEndian.Uint64(d))
	shedMin := math.Float64frombits(binary.BigEndian.Uint64(d[8:]))
	window := int(binary.BigEndian.Uint32(d[16:]))
	count := binary.BigEndian.Uint32(d[20:])
	d = d[24:]
	slos := make(map[query.ID]*budget.SLOController, count)
	for i := uint32(0); i < count; i++ {
		if len(d) < 4 {
			return nil, fmt.Errorf("%w: short system checkpoint", ErrConfig)
		}
		alen := binary.BigEndian.Uint32(d)
		d = d[4:]
		if uint32(len(d)) < alen+8 {
			return nil, fmt.Errorf("%w: short system checkpoint", ErrConfig)
		}
		id := query.ID{Analyst: string(d[:alen])}
		d = d[alen:]
		id.Serial = binary.BigEndian.Uint64(d)
		d = d[8:]
		ctl, err := budget.NewSLOController(target, shedMin, window)
		if err != nil {
			return nil, err
		}
		rest, err := ctl.RestoreState(d)
		if err != nil {
			return nil, err
		}
		d = rest
		slos[id] = ctl
	}
	s.ctrlMu.Lock()
	s.sloTarget, s.sloMin, s.sloWindow = target, shedMin, window
	s.sloEnabled = true
	s.slos = slos
	s.ctrlMu.Unlock()
	// Re-actuate the checkpointed thresholds: the rebuilt registry and
	// aggregator start every query at shed 1, but the crashed system was
	// mid-shed — push each controller's threshold back through the same
	// path a live adjustment takes.
	for id, ctl := range slos {
		if shed := ctl.Shed(); shed != 1 {
			if err := s.registry.SetShed(id, shed); err != nil {
				return nil, err
			}
			if err := s.agg.SetShed(id, shed); err != nil {
				return nil, err
			}
		}
	}
	if _, err := s.follower.Sync(); err != nil {
		return nil, err
	}
	return d, nil
}

// regEpoch pairs a query with the epoch it was registered at.
type regEpoch struct {
	id    query.ID
	epoch uint64
}

// Restore rebuilds a freshly constructed System from a Checkpoint
// record: the epoch counter resumes, the drain consumers seek to the
// checkpointed cut, every client's per-subscription randomness is
// fast-forwarded through the already-answered epochs, and the
// aggregator restores its windows, watermarks, and estimator state. In
// MultiQuery mode the same queries must be re-registered (in the same
// order) before calling Restore.
func (s *System) Restore(data []byte) error {
	v2 := len(data) >= len(sysCkptMagic) && bytes.Equal(data[:len(sysCkptMagic)], sysCkptMagic)
	v1 := !v2 && len(data) >= len(sysCkptMagicV1) && bytes.Equal(data[:len(sysCkptMagicV1)], sysCkptMagicV1)
	if !v2 && !v1 {
		return fmt.Errorf("%w: bad system checkpoint magic", ErrConfig)
	}
	d := data[len(sysCkptMagic):]
	if len(d) < 12 {
		return fmt.Errorf("%w: short system checkpoint", ErrConfig)
	}
	epoch := binary.BigEndian.Uint64(d)
	nconsumers := binary.BigEndian.Uint32(d[8:12])
	d = d[12:]
	if err := s.ensureConsumers(); err != nil {
		return err
	}
	if int(nconsumers) != len(s.consumers) {
		return fmt.Errorf("%w: checkpoint has %d consumers, system has %d", ErrConfig, nconsumers, len(s.consumers))
	}
	for _, c := range s.consumers {
		rest, err := c.SeekPositions(d)
		if err != nil {
			return err
		}
		d = rest
	}
	if len(d) < 4 {
		return fmt.Errorf("%w: short system checkpoint", ErrConfig)
	}
	nregs := binary.BigEndian.Uint32(d)
	d = d[4:]
	regs := make(map[query.ID]uint64, nregs)
	for i := uint32(0); i < nregs; i++ {
		if len(d) < 4 {
			return fmt.Errorf("%w: short system checkpoint", ErrConfig)
		}
		alen := binary.BigEndian.Uint32(d)
		d = d[4:]
		if uint32(len(d)) < alen+16 {
			return fmt.Errorf("%w: short system checkpoint", ErrConfig)
		}
		id := query.ID{Analyst: string(d[:alen])}
		d = d[alen:]
		id.Serial = binary.BigEndian.Uint64(d)
		regs[id] = binary.BigEndian.Uint64(d[8:16])
		d = d[16:]
	}
	if v2 {
		rest, err := s.restoreSLOState(d)
		if err != nil {
			return err
		}
		d = rest
	}
	if err := s.agg.Restore(d); err != nil {
		return err
	}
	s.epoch = epoch
	// Clients resume their coin streams where the crashed process left
	// them: each subscription is fast-forwarded through exactly the
	// epochs it was live for — [its registration epoch, the checkpoint
	// epoch). Subscriptions are already in place (construction in
	// legacy mode, re-registration in MultiQuery mode).
	for id, from := range regs {
		for _, c := range s.clients {
			c.FastForwardQuery(id, from, epoch)
		}
	}
	s.ctrlMu.Lock()
	s.regEpochs = regs
	s.ctrlMu.Unlock()
	return nil
}

// resultsEqual reports whether two result sequences are identical — the
// recovery tests' byte-level comparison, shared here so experiments can
// assert the same invariant.
func resultsEqual(a, b []aggregator.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Query != b[i].Query || a[i].Responses != b[i].Responses ||
			a[i].Population != b[i].Population || a[i].Inverted != b[i].Inverted ||
			!a[i].Window.Start.Equal(b[i].Window.Start) || !a[i].Window.End.Equal(b[i].Window.End) ||
			len(a[i].Buckets) != len(b[i].Buckets) {
			return false
		}
		for j := range a[i].Buckets {
			if a[i].Buckets[j] != b[i].Buckets[j] {
				return false
			}
		}
	}
	return true
}
