package core

// System-level checkpoint/restore: the epoch counter, the drain
// consumers' input positions, and the aggregator's full dynamic state
// serialize into one record. Together with Config.DataDir (durable
// proxy brokers) this is the in-process statement of the crash-recovery
// protocol the networked privapprox-node deployment runs: checkpoint
// after a drain, crash at any point, rebuild the System over the same
// data directory, re-register the same queries, Restore, and continue —
// results from the resumed run are byte-identical to an uninterrupted
// one.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"privapprox/internal/aggregator"
	"privapprox/internal/query"
)

var sysCkptMagic = []byte("PSC1")

// Checkpoint serializes the system's resumable state. Call it between
// epochs (after RunEpoch returns), never concurrently with one.
func (s *System) Checkpoint() ([]byte, error) {
	if err := s.ensureConsumers(); err != nil {
		return nil, err
	}
	buf := append([]byte(nil), sysCkptMagic...)
	buf = binary.BigEndian.AppendUint64(buf, s.epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.consumers)))
	for _, c := range s.consumers {
		buf = c.AppendPositions(buf)
	}
	// Per-query registration epochs, so Restore can fast-forward each
	// client subscription through exactly the epochs it answered in the
	// previous life — a query registered mid-run never existed before
	// its registration epoch and must not have coins skipped for it.
	s.ctrlMu.Lock()
	regs := make([]regEpoch, 0, len(s.regEpochs))
	for id, e := range s.regEpochs {
		regs = append(regs, regEpoch{id: id, epoch: e})
	}
	s.ctrlMu.Unlock()
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].id.Analyst != regs[j].id.Analyst {
			return regs[i].id.Analyst < regs[j].id.Analyst
		}
		return regs[i].id.Serial < regs[j].id.Serial
	})
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(regs)))
	for _, r := range regs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.id.Analyst)))
		buf = append(buf, r.id.Analyst...)
		buf = binary.BigEndian.AppendUint64(buf, r.id.Serial)
		buf = binary.BigEndian.AppendUint64(buf, r.epoch)
	}
	return s.agg.Checkpoint(buf)
}

// regEpoch pairs a query with the epoch it was registered at.
type regEpoch struct {
	id    query.ID
	epoch uint64
}

// Restore rebuilds a freshly constructed System from a Checkpoint
// record: the epoch counter resumes, the drain consumers seek to the
// checkpointed cut, every client's per-subscription randomness is
// fast-forwarded through the already-answered epochs, and the
// aggregator restores its windows, watermarks, and estimator state. In
// MultiQuery mode the same queries must be re-registered (in the same
// order) before calling Restore.
func (s *System) Restore(data []byte) error {
	if len(data) < len(sysCkptMagic) || !bytes.Equal(data[:len(sysCkptMagic)], sysCkptMagic) {
		return fmt.Errorf("%w: bad system checkpoint magic", ErrConfig)
	}
	d := data[len(sysCkptMagic):]
	if len(d) < 12 {
		return fmt.Errorf("%w: short system checkpoint", ErrConfig)
	}
	epoch := binary.BigEndian.Uint64(d)
	nconsumers := binary.BigEndian.Uint32(d[8:12])
	d = d[12:]
	if err := s.ensureConsumers(); err != nil {
		return err
	}
	if int(nconsumers) != len(s.consumers) {
		return fmt.Errorf("%w: checkpoint has %d consumers, system has %d", ErrConfig, nconsumers, len(s.consumers))
	}
	for _, c := range s.consumers {
		rest, err := c.SeekPositions(d)
		if err != nil {
			return err
		}
		d = rest
	}
	if len(d) < 4 {
		return fmt.Errorf("%w: short system checkpoint", ErrConfig)
	}
	nregs := binary.BigEndian.Uint32(d)
	d = d[4:]
	regs := make(map[query.ID]uint64, nregs)
	for i := uint32(0); i < nregs; i++ {
		if len(d) < 4 {
			return fmt.Errorf("%w: short system checkpoint", ErrConfig)
		}
		alen := binary.BigEndian.Uint32(d)
		d = d[4:]
		if uint32(len(d)) < alen+16 {
			return fmt.Errorf("%w: short system checkpoint", ErrConfig)
		}
		id := query.ID{Analyst: string(d[:alen])}
		d = d[alen:]
		id.Serial = binary.BigEndian.Uint64(d)
		regs[id] = binary.BigEndian.Uint64(d[8:16])
		d = d[16:]
	}
	if err := s.agg.Restore(d); err != nil {
		return err
	}
	s.epoch = epoch
	// Clients resume their coin streams where the crashed process left
	// them: each subscription is fast-forwarded through exactly the
	// epochs it was live for — [its registration epoch, the checkpoint
	// epoch). Subscriptions are already in place (construction in
	// legacy mode, re-registration in MultiQuery mode).
	for id, from := range regs {
		for _, c := range s.clients {
			c.FastForwardQuery(id, from, epoch)
		}
	}
	s.ctrlMu.Lock()
	s.regEpochs = regs
	s.ctrlMu.Unlock()
	return nil
}

// resultsEqual reports whether two result sequences are identical — the
// recovery tests' byte-level comparison, shared here so experiments can
// assert the same invariant.
func resultsEqual(a, b []aggregator.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Query != b[i].Query || a[i].Responses != b[i].Responses ||
			a[i].Population != b[i].Population || a[i].Inverted != b[i].Inverted ||
			!a[i].Window.Start.Equal(b[i].Window.Start) || !a[i].Window.End.Equal(b[i].Window.End) ||
			len(a[i].Buckets) != len(b[i].Buckets) {
			return false
		}
		for j := range a[i].Buckets {
			if a[i].Buckets[j] != b[i].Buckets[j] {
				return false
			}
		}
	}
	return true
}
