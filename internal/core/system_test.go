package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/minisql"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/workload"
)

func taxiSystemConfig(t *testing.T, clients int, params budget.Params) Config {
	t.Helper()
	q, err := workload.TaxiQuery("analyst", 1, time.Second, 4*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Clients: clients,
		Proxies: 2,
		Query:   q,
		Params:  &params,
		Seed:    42,
		Populate: func(i int, db *minisql.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			return workload.PopulateTaxi(db, rng, 3, time.Unix(1000, 0), time.Minute)
		},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for zero clients")
	}
	if _, err := New(Config{Clients: 5}); err == nil {
		t.Error("expected error for nil query")
	}
	q, _ := workload.TaxiQuery("a", 1, time.Second, time.Second, time.Second)
	if _, err := New(Config{Clients: 5, Query: q, Proxies: 1}); err == nil {
		t.Error("expected error for one proxy")
	}
}

func TestEndToEndExactWithoutNoise(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	const clients = 60
	sys, err := New(taxiSystemConfig(t, clients, params))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if sys.Params().S != 1 {
		t.Fatalf("params = %+v", sys.Params())
	}
	// Run 4 epochs (one full window) and flush.
	var all []aggregator.Result
	for e := 0; e < 4; e++ {
		res, participants, err := sys.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if participants != clients {
			t.Fatalf("epoch %d: %d participants, want all %d", e, participants, clients)
		}
		all = append(all, res...)
	}
	final, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, final...)
	if len(all) == 0 {
		t.Fatal("no windows fired")
	}
	// With s=1, p=1 each window's total answers = clients × epochs in
	// window, and per-bucket estimates are integers summing to that.
	res := all[0]
	if res.Responses != clients*4 {
		t.Errorf("responses = %d, want %d", res.Responses, clients*4)
	}
	total := 0.0
	for _, b := range res.Buckets {
		total += b.Estimate.Estimate
		if b.Estimate.Margin > 1e-9 {
			t.Errorf("bucket %q margin = %v, want 0", b.Label, b.Estimate.Margin)
		}
	}
	if math.Abs(total-float64(clients*4)) > 1e-6 {
		t.Errorf("bucket totals = %v, want %d", total, clients*4)
	}
	if sys.Aggregator().Malformed() != 0 {
		t.Errorf("malformed = %d", sys.Aggregator().Malformed())
	}
}

func TestEndToEndWithNoiseRecoversDistribution(t *testing.T) {
	params := budget.Params{S: 0.9, RR: rr.Params{P: 0.9, Q: 0.6}}
	const clients = 2000
	sys, err := New(taxiSystemConfig(t, clients, params))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for e := 0; e < 4; e++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	results, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no windows fired")
	}
	res := results[0]
	// The taxi workload puts ~33.6% of rides in bucket [0,1). The
	// estimate (normalized) should land near that.
	total := 0.0
	for _, b := range res.Buckets {
		total += b.Estimate.Estimate
	}
	if total <= 0 {
		t.Fatal("degenerate totals")
	}
	frac := res.Buckets[0].Estimate.Estimate / total
	if math.Abs(frac-workload.TaxiFirstBucketFraction) > 0.08 {
		t.Errorf("bucket-0 fraction = %v, want ≈%v", frac, workload.TaxiFirstBucketFraction)
	}
}

func TestBudgetDrivenInitializer(t *testing.T) {
	q, err := workload.TaxiQuery("analyst", 2, time.Second, 4*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{
		Clients: 100,
		Query:   q,
		Budget:  &budget.Budget{EpsilonZK: 1.5, Q: 0.6},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ezk, err := sys.Params().EpsilonZK()
	if err != nil {
		t.Fatal(err)
	}
	if ezk > 1.5+1e-9 {
		t.Errorf("derived ε_zk = %v exceeds budget", ezk)
	}
}

func TestHistoricalStoreAndBatchAnalytics(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	cfg := taxiSystemConfig(t, 40, params)
	cfg.StoreDir = t.TempDir()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for e := 0; e < 3; e++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	// Batch-analyze the stored responses over all time.
	aggCfg := aggregator.Config{
		Query:      cfg.Query,
		Params:     params,
		Population: 40,
		Proxies:    2,
		Origin:     time.Unix(1_700_000_000, 0),
		Seed:       3,
	}
	src := func(fn func(ts time.Time, payload []byte) error) error {
		_, err := sys.Store().Scan(time.Unix(0, 0), time.Unix(1<<40, 0), fn)
		return err
	}
	res, err := aggregator.BatchAnalyze(aggCfg, src, time.Unix(0, 0), time.Unix(1<<40, 0), 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 120 || res.Kept != 120 {
		t.Errorf("scanned=%d kept=%d, want 120/120", res.Scanned, res.Kept)
	}
	total := 0.0
	for _, b := range res.Buckets {
		total += b.Estimate.Estimate
	}
	// 120 stored answers over 3 epochs × 40 clients = 120 answer slots:
	// a fully sampled range, so the totals are exact.
	if math.Abs(total-120) > 1e-6 {
		t.Errorf("batch totals = %v, want 120", total)
	}
	// Second-round sampling keeps fewer and widens intervals.
	res2, err := aggregator.BatchAnalyze(aggCfg, src, time.Unix(0, 0), time.Unix(1<<40, 0), 0.5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Kept >= res2.Scanned {
		t.Errorf("second sampling kept everything: %d of %d", res2.Kept, res2.Scanned)
	}
}

func TestFeedbackRaisesSamplingUnderError(t *testing.T) {
	params := budget.Params{S: 0.2, RR: rr.Params{P: 0.5, Q: 0.6}}
	sys, err := New(taxiSystemConfig(t, 200, params))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.EnableFeedback(0.02, 0.05, 0.95); err != nil {
		t.Fatal(err)
	}
	// Run a window, then feed its (noisy, high-error) result back.
	for e := 0; e < 4; e++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	results, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	before := sys.Params().S
	after, err := sys.Feedback(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if after.S <= before {
		t.Errorf("s did not rise under high error: %v -> %v", before, after.S)
	}
	// Clients keep answering under the new parameters.
	if _, _, err := sys.RunEpoch(); err != nil {
		t.Fatal(err)
	}
}

func TestFeedbackWithoutEnableErrors(t *testing.T) {
	params := budget.Params{S: 0.5, RR: rr.Params{P: 0.5, Q: 0.6}}
	sys, err := New(taxiSystemConfig(t, 10, params))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Feedback(aggregator.Result{}); err == nil {
		t.Error("expected error without EnableFeedback")
	}
}

func TestSignedQueryReachesClients(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	sys, err := New(taxiSystemConfig(t, 3, params))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, c := range sys.Clients() {
		if c.Query() == nil {
			t.Fatal("client missing query")
		}
		if c.Query().QID != (query.ID{Analyst: "analyst", Serial: 1}) {
			t.Errorf("client query QID = %v", c.Query().QID)
		}
	}
	if sys.Fleet().Size() != 2 {
		t.Errorf("fleet size = %d", sys.Fleet().Size())
	}
	if sys.Epoch() != 0 {
		t.Errorf("initial epoch = %d", sys.Epoch())
	}
}
