package core

import (
	"strconv"

	"privapprox/internal/answer"
	"privapprox/internal/client"
	"privapprox/internal/pubsub"
	"privapprox/internal/rr"
	"privapprox/internal/telemetry"
	"privapprox/internal/telemetry/lineage"
	"privapprox/internal/xorcrypt"
)

// Telemetry returns the system's metrics registry — every pipeline
// signal (broker traffic, aggregator accounting, WAL latencies, SLO
// actuation state, client fleet counters, epoch spans) gathers through
// it, and privapprox-node serves the same registry over -metrics-addr.
func (s *System) Telemetry() *telemetry.Registry { return s.tel }

// Tracer returns the epoch tracer behind the Telemetry() registry:
// per-epoch stage spans and the window-fire log.
func (s *System) Tracer() *telemetry.Tracer { return s.tracer }

// TelemetrySnapshot gathers the current samples — the snapshot API
// tests and the experiment harness consume, identical to one /metrics
// scrape.
func (s *System) TelemetrySnapshot() []telemetry.Sample { return s.tel.Gather() }

// Lineage returns the provenance recorder behind the registry: one
// result card per fired window (in-process systems keep a memory-only
// ring; the durable node role adds the JSONL card log).
func (s *System) Lineage() *lineage.Recorder { return s.cards }

// initTelemetry registers every component source on the system's
// registry and attaches the hot-path hooks (aggregator tracer, broker
// publish histograms). Called once at the end of New; the WAL latency
// histograms are attached earlier, when the durable fleet's logs open.
func (s *System) initTelemetry() {
	s.tel.RegisterSource(s.tracer)
	s.tel.RegisterSource(s.agg)
	s.agg.SetTracer(s.tracer)

	// The provenance plane: a memory-only recorder (no card log) so
	// every in-process system answers Cards()/the debug endpoint; the
	// options are infallible without a Path, so the error is impossible.
	if rec, err := lineage.NewRecorder(lineage.Options{Registry: s.tel, Tracer: s.tracer}); err == nil {
		s.cards = rec
		s.tel.RegisterSource(rec)
		s.agg.SetCardSink(rec)
	}

	pubHist := s.tel.Histogram("privapprox_publish_ns")
	for i := 0; i < s.fleet.Size(); i++ {
		if b := s.fleet.Proxy(i).Broker(); b != nil {
			b.SetPublishHistogram(pubHist)
		}
	}
	// One fleet-total source for the broker counters (per-broker
	// registration would emit colliding unlabeled series), plus a
	// per-proxy backlog gauge for the signal overload control acts on.
	s.tel.RegisterSource(telemetry.SourceFunc(func(dst []telemetry.Sample) []telemetry.Sample {
		for i := 0; i < s.fleet.Size(); i++ {
			dst = append(dst, telemetry.Sample{
				Name: "privapprox_proxy_backlog", LabelKey: "proxy",
				LabelValue: strconv.Itoa(i), Value: float64(s.fleet.Proxy(i).Stats().TotalBacklog),
				Kind: telemetry.KindGauge,
			})
		}
		return pubsub.AppendStatsSamples(dst, s.fleet.TotalStats())
	}))

	s.tel.RegisterSource(telemetry.SourceFunc(func(dst []telemetry.Sample) []telemetry.Sample {
		return client.AppendFleetSamples(dst, client.SumStats(s.clients))
	}))

	// SLO actuation state: the live shed threshold and p95 lag each
	// controller is steering on, labeled by query.
	s.tel.RegisterSource(telemetry.SourceFunc(func(dst []telemetry.Sample) []telemetry.Sample {
		s.ctrlMu.Lock()
		defer s.ctrlMu.Unlock()
		for id, ctl := range s.slos {
			name := id.String()
			dst = append(dst,
				telemetry.Sample{Name: "privapprox_slo_shed", LabelKey: "query", LabelValue: name, Value: ctl.Shed(), Kind: telemetry.KindGauge},
				telemetry.Sample{Name: "privapprox_slo_p95_lag_slides", LabelKey: "query", LabelValue: name, Value: ctl.P95(), Kind: telemetry.KindGauge},
			)
		}
		return dst
	}))

	if s.registry != nil {
		s.tel.RegisterSource(s.registry)
	}

	// Kernel-plane counters (batch-granular, process-global).
	s.tel.RegisterSource(telemetry.SourceFunc(xorcrypt.Metrics))
	s.tel.RegisterSource(telemetry.SourceFunc(rr.Metrics))
	s.tel.RegisterSource(telemetry.SourceFunc(answer.Metrics))
}
