package core

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/minisql"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/workload"
)

// epochRun is everything observable from one full system run.
type epochRun struct {
	Results      []aggregator.Result
	Participants []int
	Decoded      int64
	Duplicates   int64
	Malformed    int64
	Dropped      int64
}

// runSystem executes epochs and a final flush under the given
// parallelism knobs.
func runSystem(t *testing.T, cfg Config, workers, shards, epochs int) epochRun {
	t.Helper()
	cfg.Workers = workers
	cfg.Shards = shards
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var run epochRun
	for e := 0; e < epochs; e++ {
		res, participants, err := sys.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		run.Results = append(run.Results, res...)
		run.Participants = append(run.Participants, participants)
	}
	final, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	run.Results = append(run.Results, final...)
	agg := sys.Aggregator()
	run.Decoded = agg.Decoded()
	run.Duplicates = agg.Duplicates()
	run.Malformed = agg.Malformed()
	run.Dropped = agg.Dropped()
	return run
}

// TestEpochPipelineDeterministicAcrossWorkersAndShards is the
// determinism regression: under a fixed Seed, the parallel pipeline
// must produce byte-identical results to the sequential one for every
// workers × shards combination, across query shapes.
func TestEpochPipelineDeterministicAcrossWorkersAndShards(t *testing.T) {
	cases := []struct {
		name    string
		clients int
		epochs  int
		query   func(t *testing.T) *query.Query
		pop     func(i int, db *minisql.DB) error
		params  budget.Params
	}{
		{
			name:    "taxi-tumbling",
			clients: 120,
			epochs:  6,
			query: func(t *testing.T) *query.Query {
				q, err := workload.TaxiQuery("analyst", 1, time.Second, 4*time.Second, 4*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				return q
			},
			pop: func(i int, db *minisql.DB) error {
				rng := rand.New(rand.NewSource(int64(i) + 1))
				return workload.PopulateTaxi(db, rng, 3, time.Unix(1000, 0), time.Minute)
			},
			params: budget.Params{S: 0.8, RR: rr.Params{P: 0.9, Q: 0.6}},
		},
		{
			name:    "taxi-sliding",
			clients: 90,
			epochs:  8,
			query: func(t *testing.T) *query.Query {
				q, err := workload.TaxiQuery("analyst", 2, time.Second, 4*time.Second, 2*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				return q
			},
			pop: func(i int, db *minisql.DB) error {
				rng := rand.New(rand.NewSource(int64(i) + 7))
				return workload.PopulateTaxi(db, rng, 2, time.Unix(1000, 0), time.Minute)
			},
			params: budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}},
		},
		{
			name:    "electricity-tumbling",
			clients: 100,
			epochs:  5,
			query: func(t *testing.T) *query.Query {
				q, err := workload.ElectricityQuery("analyst", 3, time.Second, 2*time.Second, 2*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				return q
			},
			pop: func(i int, db *minisql.DB) error {
				rng := rand.New(rand.NewSource(int64(i) + 13))
				return workload.PopulateElectricity(db, rng, 4, time.Unix(1000, 0))
			},
			params: budget.Params{S: 0.6, RR: rr.Params{P: 0.6, Q: 0.6}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Clients:  tc.clients,
				Query:    tc.query(t),
				Params:   &tc.params,
				Seed:     99,
				Populate: tc.pop,
			}
			want := runSystem(t, cfg, 1, 1, tc.epochs)
			if want.Decoded == 0 || len(want.Results) == 0 {
				t.Fatalf("degenerate sequential run: %+v", want)
			}
			for _, knobs := range [][2]int{{8, 1}, {1, 8}, {8, 8}} {
				got := runSystem(t, cfg, knobs[0], knobs[1], tc.epochs)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d shards=%d diverges from sequential\n got: %+v\nwant: %+v",
						knobs[0], knobs[1], got, want)
				}
			}
		})
	}
}

// TestRunEpochParallelStress hammers the full pipeline with many
// workers and shards under the race detector: concurrent clients
// submitting while multi-goroutine drains fire windows, plus replayed
// shares arriving mid-drain.
func TestRunEpochParallelStress(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}}
	q, err := workload.TaxiQuery("analyst", 1, time.Second, 2*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Clients: 150,
		Query:   q,
		Params:  &params,
		Seed:    7,
		Workers: 16,
		Shards:  8,
		Populate: func(i int, db *minisql.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			return workload.PopulateTaxi(db, rng, 2, time.Unix(1000, 0), time.Minute)
		},
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const epochs = 6
	for e := 0; e < epochs; e++ {
		_, participants, err := sys.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if participants != cfg.Clients {
			t.Fatalf("epoch %d: %d participants, want %d (s=1)", e, participants, cfg.Clients)
		}
	}
	if _, err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	agg := sys.Aggregator()
	if agg.Decoded() != int64(cfg.Clients*epochs) {
		t.Errorf("decoded = %d, want %d", agg.Decoded(), cfg.Clients*epochs)
	}
	if agg.Duplicates() != 0 || agg.Malformed() != 0 || agg.Dropped() != 0 {
		t.Errorf("dup=%d malformed=%d dropped=%d, want all 0",
			agg.Duplicates(), agg.Malformed(), agg.Dropped())
	}
}

// TestDrainStampsEachPoll pins the arrival-time fix: drain must take a
// fresh timestamp per poll batch rather than reusing one time.Now()
// across the whole drain loop, so join-latency accounting stays honest
// when a drain runs long.
func TestDrainStampsEachPoll(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	for _, workers := range []int{1, 4} {
		cfg := taxiSystemConfig(t, 20, params)
		cfg.Workers = workers
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var calls atomic.Int64
		base := time.Unix(5000, 0)
		sys.now = func() time.Time {
			return base.Add(time.Duration(calls.Add(1)) * time.Millisecond)
		}
		if _, _, err := sys.RunEpoch(); err != nil {
			sys.Close()
			t.Fatal(err)
		}
		// Every consumer polls at least twice (records, then empty), so a
		// per-poll clock is read more than once; the old code read it
		// exactly once per drain.
		if calls.Load() < 2 {
			t.Errorf("workers=%d: drain stamped arrival %d times; want one per poll", workers, calls.Load())
		}
		sys.Close()
	}
}
