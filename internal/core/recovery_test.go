package core

import (
	"testing"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/rr"
	"privapprox/internal/wal"
	"privapprox/internal/workload"
)

// recoveryParams exercise both noise sources (s<1, p<1) so the
// estimator's seeded rng is genuinely consumed across the checkpoint.
var recoveryParams = budget.Params{S: 0.9, RR: rr.Params{P: 0.9, Q: 0.6}}

func runEpochsInto(t *testing.T, sys *System, epochs int, results []aggregator.Result) []aggregator.Result {
	t.Helper()
	for e := 0; e < epochs; e++ {
		res, _, err := sys.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res...)
	}
	return results
}

// TestSystemCheckpointResume is the in-process crash gate: run a
// durable system for part of its epochs, checkpoint, tear the process
// state down (only the data directory and the checkpoint bytes
// survive), rebuild over the same directory, Restore, and run the rest.
// The combined result sequence must be identical to an uninterrupted
// run — same estimates, same margins, same windows, same order.
func TestSystemCheckpointResume(t *testing.T) {
	const epochs, crashAfter = 5, 2
	dir := t.TempDir()

	// Uninterrupted reference (no durability needed: same seed, same
	// population, the pipeline is deterministic).
	refCfg := taxiSystemConfig(t, 8, recoveryParams)
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := runEpochsInto(t, ref, epochs, nil)
	final, err := ref.Flush()
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, final...)
	if len(want) == 0 {
		t.Fatal("reference run produced no windows")
	}

	// First life: durable proxies, crash after two epochs.
	cfgA := taxiSystemConfig(t, 8, recoveryParams)
	cfgA.DataDir = dir
	cfgA.WALFsync = wal.PolicyEveryBatch
	sysA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	got := runEpochsInto(t, sysA, crashAfter, nil)
	ckpt, err := sysA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the kill: no Flush, no graceful drain — just release the
	// files so the second life can reopen them.
	sysA.Close()

	// Second life: rebuild over the same data directory, restore, and
	// finish the run.
	cfgB := taxiSystemConfig(t, 8, recoveryParams)
	cfgB.DataDir = dir
	cfgB.WALFsync = wal.PolicyEveryBatch
	sysB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer sysB.Close()
	if err := sysB.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if got, want := sysB.Epoch(), uint64(crashAfter); got != want {
		t.Fatalf("restored epoch = %d, want %d", got, want)
	}
	got = runEpochsInto(t, sysB, epochs-crashAfter, got)
	final, err = sysB.Flush()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, final...)

	if !resultsEqual(got, want) {
		t.Fatalf("resumed run diverged from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}
	// No window double-fired, no answer double-counted.
	if gs, ws := sysB.Aggregator().Stats(), ref.Aggregator().Stats(); gs != ws {
		t.Fatalf("stats diverged: got %+v want %+v", gs, ws)
	}
}

// TestSystemCheckpointResumeMultiQuery runs the same protocol through
// the control plane: queries re-registered after the restart (the same
// announcements a durable control topic would replay), then Restore.
func TestSystemCheckpointResumeMultiQuery(t *testing.T) {
	const epochs, crashAfter = 5, 2
	dir := t.TempDir()

	q1, err := workload.TaxiQuery("analyst", 1, time.Second, 4*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := workload.TaxiQuery("analyst", 2, time.Second, 4*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	build := func(dataDir string) *System {
		cfg := taxiSystemConfig(t, 6, recoveryParams)
		cfg.Query = nil
		cfg.MultiQuery = true
		cfg.DataDir = dataDir
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Register(q1); err != nil {
			t.Fatal(err)
		}
		if err := sys.Register(q2); err != nil {
			t.Fatal(err)
		}
		return sys
	}

	ref := build("")
	defer ref.Close()
	want := runEpochsInto(t, ref, epochs, nil)
	final, err := ref.Flush()
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, final...)

	sysA := build(dir)
	got := runEpochsInto(t, sysA, crashAfter, nil)
	ckpt, err := sysA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	sysA.Close()

	sysB := build(dir)
	defer sysB.Close()
	if err := sysB.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	got = runEpochsInto(t, sysB, epochs-crashAfter, got)
	final, err = sysB.Flush()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, final...)

	if !resultsEqual(got, want) {
		t.Fatalf("multi-query resumed run diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSystemRestoreRejectsForeignCheckpoint: restoring a checkpoint
// into a system with a different query set fails loudly instead of
// silently resuming the wrong state.
func TestSystemRestoreRejectsForeignCheckpoint(t *testing.T) {
	sysA, err := New(taxiSystemConfig(t, 4, recoveryParams))
	if err != nil {
		t.Fatal(err)
	}
	defer sysA.Close()
	if _, _, err := sysA.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	ckpt, err := sysA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	otherCfg := taxiSystemConfig(t, 4, recoveryParams)
	q, err := workload.TaxiQuery("other-analyst", 7, time.Second, 4*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	otherCfg.Query = q
	sysB, err := New(otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sysB.Close()
	if err := sysB.Restore(ckpt); err == nil {
		t.Fatal("foreign checkpoint restored without error")
	}
	if err := sysB.Restore([]byte("garbage")); err == nil {
		t.Fatal("garbage checkpoint restored without error")
	}
}

// TestSystemCheckpointResumeMidRunRegistration pins the fast-forward
// accounting for queries registered mid-run: a query that came alive at
// epoch 2 never consumed coins for epochs 0-1, so the restored clients
// must skip only the epochs it was actually live for. (Regression: an
// unconditional FastForward(epoch) over-skipped and diverged.)
func TestSystemCheckpointResumeMidRunRegistration(t *testing.T) {
	const epochs, registerAt, crashAfter = 6, 2, 4
	dir := t.TempDir()

	q1, err := workload.TaxiQuery("analyst", 1, time.Second, 4*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := workload.TaxiQuery("analyst", 2, time.Second, 4*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	build := func(dataDir string) *System {
		cfg := taxiSystemConfig(t, 6, recoveryParams)
		cfg.Query = nil
		cfg.MultiQuery = true
		cfg.DataDir = dataDir
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Register(q1); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	// Drive: q1 from the start, q2 registered at epoch registerAt.
	run := func(sys *System, from, to int, results []aggregator.Result) []aggregator.Result {
		for e := from; e < to; e++ {
			if e == registerAt {
				if err := sys.Register(q2); err != nil {
					t.Fatal(err)
				}
			}
			res, _, err := sys.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res...)
		}
		return results
	}

	ref := build("")
	defer ref.Close()
	want := run(ref, 0, epochs, nil)
	final, err := ref.Flush()
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, final...)

	sysA := build(dir)
	got := run(sysA, 0, crashAfter, nil)
	ckpt, err := sysA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	sysA.Close()

	// Second life re-registers BOTH queries (as a replayed control
	// topic would deliver them) before Restore; q2's subscription must
	// be fast-forwarded only through epochs [2, 4).
	sysB := build(dir)
	defer sysB.Close()
	if err := sysB.Register(q2); err != nil {
		t.Fatal(err)
	}
	if err := sysB.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	got = run(sysB, crashAfter, epochs, got)
	final, err = sysB.Flush()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, final...)

	if !resultsEqual(got, want) {
		t.Fatalf("mid-run-registration resume diverged:\ngot  %+v\nwant %+v", got, want)
	}
}
