package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/minisql"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/wal"
	"privapprox/internal/workload"
)

// shedParams leave both noise sources on so shedding interacts with the
// full pipeline (sampling, randomized response, estimator rescaling).
var shedParams = budget.Params{S: 0.8, RR: rr.Params{P: 0.9, Q: 0.6}}

// shedRun is everything observable from a run with a shed schedule.
type shedRun struct {
	Results []aggregator.Result
	Shedded int64
	Decoded int64
}

// runShedSystem drives a MultiQuery system for `epochs` epochs under the
// given parallelism knobs, actuating a shed schedule through the control
// plane: threshold 0.4 from epoch 3, back to 1 from epoch 7 — the same
// path an SLO controller adjustment takes.
func runShedSystem(t *testing.T, workers, shards, epochs int) shedRun {
	t.Helper()
	q, err := workload.TaxiQuery("analyst", 1, time.Second, 4*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Clients:    60,
		Proxies:    2,
		Seed:       4242,
		MultiQuery: true,
		Params:     &shedParams,
		Workers:    workers,
		Shards:     shards,
		Populate: func(i int, db *minisql.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			return workload.PopulateTaxi(db, rng, 3, time.Unix(1000, 0), time.Minute)
		},
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Register(q); err != nil {
		t.Fatal(err)
	}
	var run shedRun
	for e := 0; e < epochs; e++ {
		switch e {
		case 3:
			if err := sys.Registry().SetShed(q.QID, 0.4); err != nil {
				t.Fatal(err)
			}
			if err := sys.Aggregator().SetShed(q.QID, 0.4); err != nil {
				t.Fatal(err)
			}
		case 7:
			if err := sys.Registry().SetShed(q.QID, 1); err != nil {
				t.Fatal(err)
			}
			if err := sys.Aggregator().SetShed(q.QID, 1); err != nil {
				t.Fatal(err)
			}
		}
		res, _, err := sys.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		run.Results = append(run.Results, res...)
	}
	final, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	run.Results = append(run.Results, final...)
	for _, c := range sys.Clients() {
		run.Shedded += c.Stats().Shedded
	}
	run.Decoded = sys.Aggregator().Decoded()
	return run
}

// TestShedDeterministicAcrossWorkersAndShards extends the determinism
// contract to active shedding: with a shed schedule riding the control
// plane mid-run, results and shed counts must stay byte-identical for
// every Workers × Shards combination under a fixed Seed.
func TestShedDeterministicAcrossWorkersAndShards(t *testing.T) {
	const epochs = 10
	want := runShedSystem(t, 1, 1, epochs)
	if want.Shedded == 0 {
		t.Fatal("shed schedule suppressed no answers; test is vacuous")
	}
	if want.Decoded == 0 || len(want.Results) == 0 {
		t.Fatalf("degenerate sequential run: %+v", want)
	}
	for _, knobs := range [][2]int{{8, 1}, {1, 8}, {8, 8}} {
		got := runShedSystem(t, knobs[0], knobs[1], epochs)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d shards=%d diverges from sequential under shedding\n got: %+v\nwant: %+v",
				knobs[0], knobs[1], got, want)
		}
	}
}

// overloadConfig is the shared fleet for the closed-loop tests: small
// population, two proxies, sliding windows so lag observations arrive
// every couple of epochs.
func overloadConfig(t *testing.T, seed int64) (Config, *query.Query) {
	t.Helper()
	q, err := workload.TaxiQuery("analyst", 1, time.Second, 4*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Clients:    30,
		Proxies:    2,
		Seed:       seed,
		MultiQuery: true,
		Params:     &shedParams,
		Workers:    1,
		Populate: func(i int, db *minisql.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			return workload.PopulateTaxi(db, rng, 3, time.Unix(1000, 0), time.Minute)
		},
	}
	return cfg, q
}

func TestEnableSLOValidation(t *testing.T) {
	cfg := taxiSystemConfig(t, 4, shedParams)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.EnableSLO(4, 0.1, 8); err == nil {
		t.Error("EnableSLO accepted legacy single-query mode")
	}

	mcfg, q := overloadConfig(t, 1)
	msys, err := New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer msys.Close()
	if err := msys.Register(q); err != nil {
		t.Fatal(err)
	}
	if err := msys.EnableSLO(0, 0.1, 8); err == nil {
		t.Error("EnableSLO accepted zero target")
	}
	if err := msys.EnableSLO(4, 0, 8); err == nil {
		t.Error("EnableSLO accepted zero shed floor")
	}
	if err := msys.EnableSLO(4, 0.1, 0); err == nil {
		t.Error("EnableSLO accepted zero window")
	}
	if err := msys.EnableSLO(4, 0.1, 4); err != nil {
		t.Fatal(err)
	}
	if got := msys.SLOShed(q.QID); got != 1 {
		t.Errorf("initial SLOShed = %v, want 1", got)
	}
}

// TestSLOClosedLoopShedsAndRecovers drives the full loop: offered load
// at ~5× the drain budget makes window-fire lag grow, the controller
// tightens the shed threshold (observable on clients, in the registry,
// and stamped on results), and once the overload ends the threshold
// relaxes back out.
func TestSLOClosedLoopShedsAndRecovers(t *testing.T) {
	cfg, q := overloadConfig(t, 7)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Register(q); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableSLO(4, 0.1, 3); err != nil {
		t.Fatal(err)
	}

	// Surge: 5 answer epochs per tick against a drain budget covering
	// under one epoch's worth of shares, for 12 ticks. Without control
	// the lag grows ~2 slides per tick; with it, shedding lets the drain
	// catch back up mid-surge.
	var surgeResults []aggregator.Result
	var peakPending int64
	for tick := 0; tick < 12; tick++ {
		for k := 0; k < 5; k++ {
			if _, err := sys.AnswerEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		res, drained, err := sys.DrainUpTo(40)
		if err != nil {
			t.Fatal(err)
		}
		if drained > 40 {
			t.Fatalf("DrainUpTo(40) drained %d", drained)
		}
		surgeResults = append(surgeResults, res...)
		pending, err := sys.PendingShares()
		if err != nil {
			t.Fatal(err)
		}
		if pending > peakPending {
			peakPending = pending
		}
	}
	if peakPending == 0 {
		t.Fatal("surge never built a backlog; overload never happened")
	}
	surgeShed := sys.SLOShed(q.QID)
	if surgeShed >= 1 {
		t.Fatalf("controller did not tighten under overload: shed = %v", surgeShed)
	}
	// The threshold reached the clients through the control plane…
	var shedded int64
	for _, c := range sys.Clients() {
		shedded += c.Stats().Shedded
	}
	if shedded == 0 {
		t.Error("no client shed an answer despite a tightened threshold")
	}
	// …and the registry's snapshot carries it.
	entry, ok := sys.Registry().Entry(q.QID)
	if !ok {
		t.Fatal("query vanished from registry")
	}
	if entry.Shed != surgeShed {
		t.Errorf("registry shed = %v, controller shed = %v", entry.Shed, surgeShed)
	}
	// Late results are stamped with a sub-1 threshold.
	sawStamp := false
	for _, r := range surgeResults {
		if r.Shed < 1 {
			sawStamp = true
		}
	}
	if !sawStamp {
		t.Error("no surge result stamped with shed < 1")
	}

	// Recovery: drain the backlog dry, then run at sustainable load; the
	// relax path walks the threshold back up.
	for {
		_, drained, err := sys.DrainUpTo(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if drained == 0 {
			break
		}
	}
	for e := 0; e < 100; e++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	recovered := sys.SLOShed(q.QID)
	if recovered <= surgeShed {
		t.Errorf("threshold did not recover: surge %v, after recovery %v", surgeShed, recovered)
	}
}

// TestSLOCheckpointResumeMidShed is the crash gate for overload
// control: a system checkpointed mid-surge — threshold tightened,
// backlog queued — must resume shedding at the checkpointed level and
// produce results identical to an uninterrupted run. Un-shedding on
// recovery would re-overload the fleet the moment it came back.
func TestSLOCheckpointResumeMidShed(t *testing.T) {
	const ticks, crashAfter = 12, 6
	dir := t.TempDir()

	build := func(dataDir string, seed int64) (*System, *query.Query) {
		cfg, q := overloadConfig(t, seed)
		cfg.DataDir = dataDir
		cfg.WALFsync = wal.PolicyEveryBatch
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Register(q); err != nil {
			t.Fatal(err)
		}
		if err := sys.EnableSLO(4, 0.1, 3); err != nil {
			t.Fatal(err)
		}
		return sys, q
	}
	tickOnce := func(sys *System) []aggregator.Result {
		for k := 0; k < 5; k++ {
			if _, err := sys.AnswerEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		res, _, err := sys.DrainUpTo(40)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Uninterrupted reference.
	ref, qID := build("", 99)
	defer ref.Close()
	var want []aggregator.Result
	for i := 0; i < ticks; i++ {
		want = append(want, tickOnce(ref)...)
	}

	// First life: crash mid-surge.
	sysA, _ := build(dir, 99)
	var got []aggregator.Result
	for i := 0; i < crashAfter; i++ {
		got = append(got, tickOnce(sysA)...)
	}
	crashShed := sysA.SLOShed(qID.QID)
	if crashShed >= 1 {
		t.Fatalf("surge did not tighten before the crash: shed = %v", crashShed)
	}
	ckpt, err := sysA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	sysA.Close()

	// Second life over the same data directory.
	sysB, _ := build(dir, 99)
	defer sysB.Close()
	if err := sysB.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if got, want := sysB.SLOShed(qID.QID), crashShed; got != want {
		t.Fatalf("restored shed = %v, want %v", got, want)
	}
	// The threshold was re-actuated, not just remembered: the registry
	// snapshot and aggregator stamp both carry it.
	if entry, ok := sysB.Registry().Entry(qID.QID); !ok || entry.Shed != crashShed {
		t.Fatalf("restored registry shed = %+v, want %v", entry, crashShed)
	}
	if shed, err := sysB.Aggregator().Shed(qID.QID); err != nil || shed != crashShed {
		t.Fatalf("restored aggregator shed = %v (%v), want %v", shed, err, crashShed)
	}
	for i := crashAfter; i < ticks; i++ {
		got = append(got, tickOnce(sysB)...)
	}
	if !resultsEqual(got, want) {
		t.Fatalf("mid-shed resume diverged:\ngot  %+v\nwant %+v", got, want)
	}
	if a, b := sysB.SLOShed(qID.QID), ref.SLOShed(qID.QID); a != b {
		t.Errorf("post-resume shed %v diverged from reference %v", a, b)
	}
}

// TestRestoreAcceptsPSC1 pins backward compatibility: a pre-overload-
// control checkpoint (PSC1 — no SLO section) still restores. The v1
// record is synthesized from a v2 one by dropping the zero SLO flag
// byte, which sits immediately before the aggregator section.
func TestRestoreAcceptsPSC1(t *testing.T) {
	const epochs, crashAfter = 4, 2
	dir := t.TempDir()

	ref, err := New(taxiSystemConfig(t, 6, recoveryParams))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := runEpochsInto(t, ref, epochs, nil)
	final, err := ref.Flush()
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, final...)

	cfgA := taxiSystemConfig(t, 6, recoveryParams)
	cfgA.DataDir = dir
	cfgA.WALFsync = wal.PolicyEveryBatch
	sysA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	got := runEpochsInto(t, sysA, crashAfter, nil)
	ckpt, err := sysA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Re-serialize just the aggregator section to locate the tail, then
	// splice out the SLO flag byte (zero here — SLO control is off) and
	// swap the magic.
	aggCkpt, err := sysA.Aggregator().Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	sysA.Close()
	cut := len(ckpt) - len(aggCkpt)
	if cut < 5 || !bytes.Equal(ckpt[cut:], aggCkpt) || ckpt[cut-1] != 0 {
		t.Fatalf("checkpoint layout changed; cannot synthesize a v1 record")
	}
	v1 := append([]byte("PSC1"), ckpt[4:cut-1]...)
	v1 = append(v1, aggCkpt...)

	cfgB := taxiSystemConfig(t, 6, recoveryParams)
	cfgB.DataDir = dir
	cfgB.WALFsync = wal.PolicyEveryBatch
	sysB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer sysB.Close()
	if err := sysB.Restore(v1); err != nil {
		t.Fatal(err)
	}
	if got, want := sysB.Epoch(), uint64(crashAfter); got != want {
		t.Fatalf("restored epoch = %d, want %d", got, want)
	}
	got = runEpochsInto(t, sysB, epochs-crashAfter, got)
	final, err = sysB.Flush()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, final...)
	if !resultsEqual(got, want) {
		t.Fatalf("v1 restore diverged:\ngot  %+v\nwant %+v", got, want)
	}
}
