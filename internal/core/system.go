// Package core wires the PrivApprox components into the running system
// of the paper's Fig. 1/Fig. 3: an analyst's signed query and execution
// budget flow through the initializer to clients via proxies; every
// epoch, sampled clients answer with randomized responses split into XOR
// shares; the proxies forward; the aggregator joins, decrypts, windows,
// and produces results with error bounds; and a feedback controller
// re-tunes the sampling parameter when the measured error drifts from
// the budget.
//
// # Parallel epoch pipeline
//
// The epoch hot path is parallel end-to-end. RunEpoch fans the client
// answering step (sample, local query, randomized response, XOR split,
// submit) over a bounded pool of Config.Workers goroutines; drain runs
// one goroutine per proxy consumer, all feeding the aggregator, whose
// join and window state is sharded by message-ID hash (Config.Shards
// per-shard locks). Exactly-once consumption is preserved by the
// persistent per-proxy consumer groups — each consumer is owned by a
// single drain goroutine.
//
// Determinism contract: under a fixed Config.Seed, epoch results are
// byte-identical for every Workers and Shards setting. Each client owns
// a private seeded RNG, so worker scheduling cannot reorder its coin
// flips; per-bucket window counts are integer sums, so share
// interleaving and shard routing cannot change them; and the
// aggregator serializes window firing, so the estimator's seeded RNG is
// consumed in the same window order regardless of concurrency.
package core

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/client"
	"privapprox/internal/engine"
	"privapprox/internal/histstore"
	"privapprox/internal/minisql"
	"privapprox/internal/proxy"
	"privapprox/internal/pubsub"
	"privapprox/internal/query"
	"privapprox/internal/telemetry"
	"privapprox/internal/telemetry/lineage"
	"privapprox/internal/wal"
	"privapprox/internal/xorcrypt"
)

// ErrConfig reports an invalid system configuration.
var ErrConfig = errors.New("core: invalid config")

// Config assembles an in-process deployment.
type Config struct {
	// Clients is the population size U.
	Clients int
	// Proxies is the share fan-out n (≥ 2).
	Proxies int
	// Partitions per proxy topic; defaults to 4.
	Partitions int
	// Query is the analyst's query (unsigned; the system signs it with a
	// fresh analyst key unless AnalystKey is provided).
	Query *query.Query
	// Budget is converted by the initializer into (s, p, q). Provide
	// either Budget or Params.
	Budget *budget.Budget
	// Params directly pins the system parameters, bypassing Derive.
	Params *budget.Params
	// Origin anchors epoch zero in event time.
	Origin time.Time
	// Populate fills client i's database before the run.
	Populate func(i int, db *minisql.DB) error
	// Reducer folds local query rows into the answer value; defaults to
	// client.ReduceLast.
	Reducer client.Reducer
	// Confidence for result error bounds; defaults to 0.95.
	Confidence float64
	// StoreDir, when non-empty, persists decoded responses for
	// historical analytics. The stored contents are deterministic under
	// a fixed Seed, but with Workers > 1 the record order within an
	// epoch is scheduling-dependent; batch analytics whose second-round
	// sampling must be replayable record-for-record should run with
	// Workers == 1.
	StoreDir string
	// Seed makes the whole run deterministic; 0 draws a random seed.
	Seed int64
	// AnalystKey optionally supplies the signing key.
	AnalystKey ed25519.PrivateKey
	// Workers bounds how many clients answer concurrently per epoch and
	// gates the parallel drain; defaults to GOMAXPROCS. Workers == 1
	// reproduces the sequential pipeline. Results are identical for
	// every worker count under a fixed Seed.
	Workers int
	// Shards is the aggregator's lock-shard count (see
	// aggregator.Config.Shards); defaults to GOMAXPROCS.
	Shards int
	// DataDir, when non-empty, makes the proxies' brokers durable: every
	// published share and control announcement is journaled to
	// write-ahead logs under DataDir/proxies and replayed when a new
	// System is built over the same directory. Pair it with
	// Checkpoint/Restore for full crash recovery — see
	// TestSystemCheckpointResume for the protocol.
	DataDir string
	// WALFsync is the fsync policy for DataDir journals; the zero value
	// (wal.PolicyNever) survives process crashes but not OS crashes.
	WALFsync wal.Policy
	// MultiQuery enables the query control plane: queries are
	// registered (and stopped) dynamically via Register/StopQuery, and
	// reach clients as signed announcements through the proxies'
	// control topics — the paper's §3.1 distribution path — rather than
	// by direct subscription. Query may then be nil (an initially idle
	// fleet) or set (registered as the first query). Every registered
	// query produces results byte-identical to the same query running
	// alone in a single-query system under the same Seed.
	MultiQuery bool
}

// System is a fully wired in-process PrivApprox deployment.
type System struct {
	cfg       Config
	params    budget.Params
	signed    *query.Signed
	pub       ed25519.PublicKey
	priv      ed25519.PrivateKey
	clients   []*client.Client
	fleet     *proxy.Fleet
	agg       *aggregator.Aggregator
	store     *histstore.Store
	ctrl      *budget.Controller
	epoch     uint64
	consumers []*pubsub.Consumer

	// Multi-query control plane (MultiQuery mode): the registry signs
	// off on submissions and announces snapshots over the fleet's
	// control topics; the follower plays announcements back onto the
	// in-process clients — the same path a networked client process
	// rides, so distribution is exercised even in one process.
	registry *engine.Registry
	follower *engine.Follower
	// Per-query feedback controllers (multi mode); guarded by ctrlMu.
	ctrlMu    sync.Mutex
	ctrls     map[query.ID]*budget.Controller
	fbTarget  float64
	fbMin     float64
	fbMax     float64
	fbEnabled bool
	// regEpochs records the epoch each active query was registered at
	// (guarded by ctrlMu) — checkpointed so Restore can fast-forward
	// each client subscription through exactly its own live epochs.
	regEpochs map[query.ID]uint64

	// SLO overload controllers (EnableSLO, MultiQuery mode): one per
	// query, created lazily; guarded by ctrlMu. The controllers'
	// decisions are recorded in checkpoints so crash recovery resumes
	// the loop mid-flight instead of un-shedding an overloaded system.
	slos       map[query.ID]*budget.SLOController
	sloTarget  float64 // p95 window-fire lag target, in slides
	sloMin     float64
	sloWindow  int
	sloEnabled bool

	// now stamps record arrival once per poll batch (tests inject a
	// fake clock to pin down per-poll latency accounting).
	now func() time.Time

	// Telemetry plane: tel aggregates every component source (built
	// before the fleet so the WAL latency histograms exist when the
	// durable logs open); tracer keys per-stage spans by epoch; cards
	// is the provenance recorder fed by the aggregator's fire path.
	tel    *telemetry.Registry
	tracer *telemetry.Tracer
	cards  *lineage.Recorder
}

// New builds and wires the system: initializer (budget → parameters),
// query signing, proxies, clients (with their private databases), and
// the aggregator.
func New(cfg Config) (*System, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("%w: %d clients", ErrConfig, cfg.Clients)
	}
	if cfg.Proxies == 0 {
		cfg.Proxies = 2
	}
	if cfg.Proxies < 2 {
		return nil, fmt.Errorf("%w: %d proxies", ErrConfig, cfg.Proxies)
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 4
	}
	if cfg.Query == nil && !cfg.MultiQuery {
		return nil, fmt.Errorf("%w: nil query", ErrConfig)
	}
	if cfg.Seed == 0 {
		cfg.Seed = mrand.Int63()
	}
	if cfg.Origin.IsZero() {
		cfg.Origin = time.Unix(1_700_000_000, 0)
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("%w: %d workers", ErrConfig, cfg.Workers)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("%w: %d shards", ErrConfig, cfg.Shards)
	}

	// Initializer: budget → (s, p, q).
	var params budget.Params
	switch {
	case cfg.Params != nil:
		params = *cfg.Params
	case cfg.Budget != nil:
		p, err := cfg.Budget.Derive(cfg.Clients)
		if err != nil {
			return nil, err
		}
		params = p
	default:
		p, err := (budget.Budget{}).Derive(cfg.Clients)
		if err != nil {
			return nil, err
		}
		params = p
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}

	// Analyst signature for non-repudiation.
	priv := cfg.AnalystKey
	if priv == nil {
		_, k, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("core: keygen: %w", err)
		}
		priv = k
	}
	var signed *query.Signed
	if cfg.Query != nil {
		sq, err := query.Sign(cfg.Query, priv)
		if err != nil {
			return nil, err
		}
		signed = sq
	}
	pub, ok := priv.Public().(ed25519.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: bad analyst key", ErrConfig)
	}

	tel := telemetry.NewRegistry()
	var fleet *proxy.Fleet
	var err error
	if cfg.DataDir != "" {
		fleet, err = proxy.NewDurableFleet(cfg.Proxies, cfg.Partitions,
			filepath.Join(cfg.DataDir, "proxies"), wal.Options{
				Policy:     cfg.WALFsync,
				AppendHist: tel.Histogram("privapprox_wal_append_ns"),
				FsyncHist:  tel.Histogram("privapprox_wal_fsync_ns"),
			})
	} else {
		fleet, err = proxy.NewFleet(cfg.Proxies, cfg.Partitions)
	}
	if err != nil {
		return nil, err
	}

	sys := &System{cfg: cfg, params: params, signed: signed, pub: pub, priv: priv, fleet: fleet, now: time.Now,
		regEpochs: make(map[query.ID]uint64), tel: tel, tracer: telemetry.NewTracer()}
	if signed != nil && !cfg.MultiQuery {
		// Legacy mode: the single query is live from epoch 0.
		sys.regEpochs[signed.Query.QID] = 0
	}

	if cfg.StoreDir != "" {
		store, err := histstore.Open(cfg.StoreDir, 0)
		if err != nil {
			fleet.Close()
			return nil, err
		}
		sys.store = store
	}

	aggCfg := aggregator.Config{
		Query:      cfg.Query,
		Params:     params,
		Population: cfg.Clients,
		Proxies:    cfg.Proxies,
		Origin:     cfg.Origin,
		Confidence: cfg.Confidence,
		Seed:       cfg.Seed + 1,
		Shards:     cfg.Shards,
	}
	if sys.store != nil {
		aggCfg.OnDecoded = func(raw []byte, eventTime time.Time) {
			// Best-effort persistence; batch analytics tolerates gaps.
			_ = sys.store.Append(eventTime, raw)
		}
	}
	if cfg.MultiQuery {
		// The control plane owns query registration: the aggregator
		// starts empty and queries arrive through RegisterSigned below,
		// each with the same per-query estimator seed a solo run would
		// use (cfg.Seed+1).
		aggCfg.Query = nil
	}
	agg, err := aggregator.NewMulti(aggCfg)
	if err != nil {
		sys.Close()
		return nil, err
	}
	sys.agg = agg

	// Fan share i to proxy i.
	sinks := make([]client.ShareSink, fleet.Size())
	for i := range sinks {
		sinks[i] = fleet.Proxy(i)
	}

	for i := 0; i < cfg.Clients; i++ {
		db := minisql.NewDB()
		if cfg.Populate != nil {
			if err := cfg.Populate(i, db); err != nil {
				sys.Close()
				return nil, fmt.Errorf("core: populate client %d: %w", i, err)
			}
		}
		ccfg := client.Config{
			ID:      fmt.Sprintf("client-%06d", i),
			DB:      db,
			Sinks:   sinks,
			Reducer: cfg.Reducer,
			Seed:    cfg.Seed + int64(i) + 2,
			// Seeded MIDs pin the shares' partition routing, extending the
			// determinism contract to bounded drains (DrainUpTo): where a
			// partial drain cuts off depends on which partition each share
			// landed in. Deployments (cmd/privapprox-node) keep the default
			// crypto-random MIDs.
			MIDSource: mrand.New(mrand.NewSource(cfg.Seed + (int64(i)+1)*1_000_003)),
		}
		if !cfg.MultiQuery {
			// Legacy single-query mode pins the system analyst's key on
			// every client; in multi mode each announcement carries its
			// analyst's key instead.
			ccfg.AnalystKey = pub
		}
		c, err := client.New(ccfg)
		if err != nil {
			sys.Close()
			return nil, err
		}
		if !cfg.MultiQuery {
			if err := c.Subscribe(signed, params); err != nil {
				sys.Close()
				return nil, err
			}
		}
		sys.clients = append(sys.clients, c)
	}

	if cfg.MultiQuery {
		// Control plane: registry → fleet control topics → follower →
		// clients. Even in-process, query distribution rides the pub/sub
		// substrate, so the path a networked client process takes is the
		// path every test of this mode takes.
		sys.registry = engine.NewRegistry()
		sys.ctrls = make(map[query.ID]*budget.Controller)
		if err := sys.registry.AttachSink(fleet); err != nil {
			sys.Close()
			return nil, err
		}
		cc, err := fleet.Proxy(0).ControlConsumer("clients")
		if err != nil {
			sys.Close()
			return nil, err
		}
		subs := make([]engine.Subscriber, len(sys.clients))
		for i, c := range sys.clients {
			subs[i] = c
		}
		sys.follower = engine.NewFollower(cc, engine.NewApplier(subs...))
		if signed != nil {
			if err := sys.RegisterSigned(signed, pub, params); err != nil {
				sys.Close()
				return nil, err
			}
		}
	}
	sys.initTelemetry()
	return sys, nil
}

// Params returns the derived system parameters.
func (s *System) Params() budget.Params { return s.params }

// Clients returns the client handles (read-only use).
func (s *System) Clients() []*client.Client { return s.clients }

// Fleet returns the proxy fleet.
func (s *System) Fleet() *proxy.Fleet { return s.fleet }

// Aggregator returns the aggregator.
func (s *System) Aggregator() *aggregator.Aggregator { return s.agg }

// Store returns the historical store, or nil when not configured.
func (s *System) Store() *histstore.Store { return s.store }

// Registry returns the multi-query control plane, or nil when
// MultiQuery mode is off.
func (s *System) Registry() *engine.Registry { return s.registry }

// Register signs a query with the system analyst key and submits it to
// the running fleet: the registry announces it over the proxies'
// control topics, the clients pick it up, and the aggregator opens
// per-query state for it — all before Register returns. Parameters are
// the system defaults derived at construction (use RegisterSigned for
// an external analyst's own parameters).
func (s *System) Register(q *query.Query) error {
	if s.registry == nil {
		return fmt.Errorf("%w: MultiQuery mode not enabled", ErrConfig)
	}
	signed, err := query.Sign(q, s.priv)
	if err != nil {
		return err
	}
	return s.RegisterSigned(signed, s.pub, s.params)
}

// RegisterSigned submits an analyst's signed query with its derived
// parameters. The analyst's key is installed in the registry trust
// store under the query's analyst name.
func (s *System) RegisterSigned(signed *query.Signed, analystKey ed25519.PublicKey, params budget.Params) error {
	if s.registry == nil {
		return fmt.Errorf("%w: MultiQuery mode not enabled", ErrConfig)
	}
	if err := s.registry.Trust(signed.Query.QID.Analyst, analystKey); err != nil {
		return err
	}
	if err := s.registry.Register(signed, params); err != nil {
		return err
	}
	if err := s.agg.AddQuery(aggregator.QuerySpec{Query: signed.Query, Params: params}); err != nil {
		return err
	}
	s.ctrlMu.Lock()
	if _, ok := s.regEpochs[signed.Query.QID]; !ok {
		// First registration pins the query's start epoch; parameter
		// updates keep it (the coin stream has been running since).
		s.regEpochs[signed.Query.QID] = s.epoch
	}
	s.ctrlMu.Unlock()
	_, err := s.follower.Sync()
	return err
}

// StopQuery deactivates a query mid-run: clients stop answering it from
// the next epoch, and its still-open windows are flushed and returned.
// Shares already in flight at the proxies join as usual but count under
// the aggregator's UnknownQuery statistic once drained.
func (s *System) StopQuery(id query.ID) ([]aggregator.Result, error) {
	if s.registry == nil {
		return nil, fmt.Errorf("%w: MultiQuery mode not enabled", ErrConfig)
	}
	if err := s.registry.Stop(id); err != nil {
		return nil, err
	}
	if _, err := s.follower.Sync(); err != nil {
		return nil, err
	}
	s.ctrlMu.Lock()
	delete(s.ctrls, id)
	delete(s.regEpochs, id)
	s.ctrlMu.Unlock()
	return s.agg.RemoveQuery(id)
}

// RunEpoch executes one answer epoch across all clients — concurrently
// on Config.Workers goroutines — drains the proxies into the
// aggregator, and returns any window results that fired plus the number
// of participating clients (clients that answered at least one query).
// In MultiQuery mode, pending control-topic announcements are applied
// first, so queries registered since the last epoch take effect at a
// deterministic point. Results are deterministic under a fixed
// Config.Seed for any worker count.
func (s *System) RunEpoch() ([]aggregator.Result, int, error) {
	if s.follower != nil {
		if _, err := s.follower.Sync(); err != nil {
			return nil, 0, err
		}
	}
	epoch := s.epoch
	s.epoch++
	s.tracer.BeginEpoch(epoch)
	if s.registry != nil && len(s.registry.Active()) == 0 {
		// Idle fleet: no active queries, nothing to answer this epoch
		// (clients would report ErrNotSubscribed). Still drain so
		// stragglers of stopped queries surface in the statistics.
		results, err := s.timedDrain()
		return results, 0, err
	}
	t0 := time.Now()
	participants, err := s.answerAll(epoch)
	s.tracer.Record(epoch, telemetry.StageAnswer, time.Since(t0), participants, 0)
	if err != nil {
		return nil, participants, err
	}
	results, err := s.timedDrain()
	if err != nil {
		return results, participants, err
	}
	return results, participants, s.observeSLO(results)
}

// AnswerEpoch runs just the answering half of RunEpoch: pending control
// announcements are applied, and every client answers the current epoch,
// leaving the shares queued at the proxies undrained. Paired with
// DrainUpTo it models an aggregator whose per-tick drain capacity is
// bounded — the surge harness drives overload by answering more epochs
// per tick than the drain budget covers. Returns the participant count.
func (s *System) AnswerEpoch() (int, error) {
	if s.follower != nil {
		if _, err := s.follower.Sync(); err != nil {
			return 0, err
		}
	}
	epoch := s.epoch
	s.epoch++
	s.tracer.BeginEpoch(epoch)
	if s.registry != nil && len(s.registry.Active()) == 0 {
		return 0, nil
	}
	t0 := time.Now()
	participants, err := s.answerAll(epoch)
	s.tracer.Record(epoch, telemetry.StageAnswer, time.Since(t0), participants, 0)
	return participants, err
}

// DrainUpTo forwards at most max queued records from the proxies to the
// aggregator — a bounded, always-sequential drain (deterministic
// round-robin over the proxy consumers) modelling fixed aggregation
// capacity per tick. It returns fired windows in window-start order and
// the number of records actually drained; a count under max means the
// proxies ran dry. Fired windows feed the overload controllers when
// EnableSLO is on, exactly as in RunEpoch.
func (s *System) DrainUpTo(max int) ([]aggregator.Result, int, error) {
	if max <= 0 {
		return nil, 0, nil
	}
	if err := s.ensureConsumers(); err != nil {
		return nil, 0, err
	}
	t0 := time.Now()
	var fired []aggregator.Result
	drained := 0
	// Split each round's budget fairly across the proxy consumers: a
	// share only decodes once ALL its sibling shares arrive, so draining
	// one proxy's whole backlog before touching the next would burn the
	// budget on un-joinable halves and stall the watermark.
	chunk := (max + len(s.consumers) - 1) / len(s.consumers)
	if chunk > 4096 {
		chunk = 4096
	}
	for drained < max {
		any := false
		for src, c := range s.consumers {
			room := max - drained
			if room <= 0 {
				break
			}
			if room > chunk {
				room = chunk
			}
			recs, err := c.Poll(room)
			if err != nil {
				return fired, drained, err
			}
			res, err := s.submitRecords(recs, src, s.now())
			fired = append(fired, res...)
			if err != nil {
				return fired, drained, err
			}
			drained += len(recs)
			if len(recs) > 0 {
				any = true
			}
		}
		if !any {
			break
		}
	}
	aggregator.SortResults(fired, s.agg.QueryOrder())
	// Depth is the backlog the bounded drain left behind — the signal
	// the overload controller steers on.
	s.tracer.RecordCurrent(telemetry.StageDrain, time.Since(t0), drained,
		int(s.fleet.TotalStats().TotalBacklog))
	return fired, drained, s.observeSLO(fired)
}

// PendingShares reports how many records are still queued at the
// proxies ahead of the aggregator's consumers — the backlog a bounded
// drain leaves behind. Without overload control this grows without
// bound under sustained over-offered load.
func (s *System) PendingShares() (int64, error) {
	if err := s.ensureConsumers(); err != nil {
		return 0, err
	}
	var total int64
	for _, c := range s.consumers {
		lag, err := c.Lag()
		if err != nil {
			return total, err
		}
		total += lag
	}
	return total, nil
}

// EnableSLO installs the closed-loop overload controller (MultiQuery
// mode): after every drain, each fired window's lag — how far its end
// trails the fleet's current event time, in slides — feeds a per-query
// budget.SLOController targeting the given p95 lag. When the controller
// tightens or relaxes the shed threshold, the change is distributed
// like any parameter update: through the registry's control topics to
// the clients (which shed deterministically via their hash deciders)
// and into the aggregator (which stamps results with the threshold in
// force). Controller state is checkpointed, so crash recovery resumes
// the loop mid-flight instead of un-shedding an overloaded system.
func (s *System) EnableSLO(targetLagSlides, shedMin float64, window int) error {
	if !s.cfg.MultiQuery {
		return fmt.Errorf("%w: SLO control requires MultiQuery mode", ErrConfig)
	}
	if _, err := budget.NewSLOController(targetLagSlides, shedMin, window); err != nil {
		return err
	}
	s.ctrlMu.Lock()
	s.sloTarget, s.sloMin, s.sloWindow = targetLagSlides, shedMin, window
	s.sloEnabled = true
	if s.slos == nil {
		s.slos = make(map[query.ID]*budget.SLOController)
	}
	s.ctrlMu.Unlock()
	return nil
}

// SLOShed returns the shed threshold currently in force for a query (1
// when SLO control is off or the query has not fired a window yet).
func (s *System) SLOShed(id query.ID) float64 {
	s.ctrlMu.Lock()
	defer s.ctrlMu.Unlock()
	if ctl := s.slos[id]; ctl != nil {
		return ctl.Shed()
	}
	return 1
}

// observeSLO folds fired windows into their queries' overload
// controllers and actuates shed-threshold changes through the control
// plane. Lag is measured in slides: (current event time − window end) /
// slide, where current event time is Origin + epochsAnswered×Frequency.
// A fleet that keeps up fires windows within a slide or two of the
// watermark; a backlogged fleet fires them ever further behind.
func (s *System) observeSLO(results []aggregator.Result) error {
	if len(results) == 0 {
		return nil
	}
	s.ctrlMu.Lock()
	if !s.sloEnabled {
		s.ctrlMu.Unlock()
		return nil
	}
	type actuation struct {
		id   query.ID
		shed float64
	}
	var acts []actuation
	epochs := s.epoch
	for _, res := range results {
		entry, ok := s.registry.Entry(res.Query)
		if !ok {
			continue // straggler of a stopped query
		}
		q := entry.Signed.Query
		if q.Slide <= 0 {
			continue
		}
		cur := s.cfg.Origin.Add(time.Duration(epochs) * q.Frequency)
		lag := float64(cur.Sub(res.Window.End)) / float64(q.Slide)
		ctl := s.slos[res.Query]
		if ctl == nil {
			c, err := budget.NewSLOController(s.sloTarget, s.sloMin, s.sloWindow)
			if err != nil {
				s.ctrlMu.Unlock()
				return err
			}
			s.slos[res.Query] = c
			ctl = c
		}
		prev := ctl.Shed()
		if next := ctl.Observe(lag); next != prev {
			acts = append(acts, actuation{id: res.Query, shed: next})
		}
	}
	s.ctrlMu.Unlock()
	if len(acts) == 0 {
		return nil
	}
	// Actuate outside the lock: registry announcement (no revision bump —
	// coin streams are untouched), aggregator stamp, then one sync so the
	// new threshold is in force from the next answered epoch.
	for _, a := range acts {
		if err := s.registry.SetShed(a.id, a.shed); err != nil {
			return err
		}
		if err := s.agg.SetShed(a.id, a.shed); err != nil {
			return err
		}
	}
	_, err := s.follower.Sync()
	return err
}

// answerAll fans AnswerOnce over the client population with a bounded
// worker pool. Each client is answered exactly once per epoch; clients
// never share mutable state (each owns its database, RNG, and
// splitter), and the proxies' brokers are concurrency-safe, so the only
// cross-worker effect is the interleaving of shares at the proxies —
// which the sharded aggregator is insensitive to.
func (s *System) answerAll(epoch uint64) (int, error) {
	workers := s.cfg.Workers
	if workers > len(s.clients) {
		workers = len(s.clients)
	}
	if workers <= 1 {
		participants := 0
		for _, c := range s.clients {
			ok, err := c.AnswerOnce(epoch)
			if err != nil {
				return participants, err
			}
			if ok {
				participants++
			}
		}
		return participants, nil
	}

	var (
		next         atomic.Int64
		participants atomic.Int64
		latch        errLatch
		wg           sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.clients) || latch.failed() {
					return
				}
				ok, err := s.clients[i].AnswerOnce(epoch)
				if err != nil {
					latch.fail(err)
					return
				}
				if ok {
					participants.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return int(participants.Load()), latch.err()
}

// errLatch records the first error a group of goroutines hits and flags
// the others to wind down.
type errLatch struct {
	mu    sync.Mutex
	bad   atomic.Bool
	first error
}

func (l *errLatch) fail(err error) {
	l.mu.Lock()
	if l.first == nil {
		l.first = err
	}
	l.mu.Unlock()
	l.bad.Store(true)
}

func (l *errLatch) failed() bool { return l.bad.Load() }

func (l *errLatch) err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// Epoch returns the next epoch number to run.
func (s *System) Epoch() uint64 { return s.epoch }

// drain forwards everything sitting at the proxies to the aggregator,
// using persistent consumers so records are read exactly once. With
// Workers > 1 each proxy's consumer is drained by its own goroutine,
// all feeding the sharded aggregator concurrently; each poll batch is
// stamped with its own arrival time so join-latency accounting stays
// honest however long the drain runs. Fired windows are returned in
// window-start order, which makes the output independent of goroutine
// scheduling.
// timedDrain charges a full drain to the current epoch's drain stage —
// batch-granular (two clock reads per epoch), so the per-record tail
// stays allocation- and timer-free.
func (s *System) timedDrain() ([]aggregator.Result, error) {
	t0 := time.Now()
	fired, err := s.drain()
	s.tracer.RecordCurrent(telemetry.StageDrain, time.Since(t0), len(fired), 0)
	return fired, err
}

func (s *System) drain() ([]aggregator.Result, error) {
	if err := s.ensureConsumers(); err != nil {
		return nil, err
	}
	var fired []aggregator.Result
	var err error
	if s.cfg.Workers <= 1 || len(s.consumers) == 1 {
		fired, err = s.drainSequential()
	} else {
		fired, err = s.drainParallel()
	}
	if err != nil {
		return fired, err
	}
	aggregator.SortResults(fired, s.agg.QueryOrder())
	return fired, nil
}

// ensureConsumers lazily builds the persistent per-proxy consumer group.
func (s *System) ensureConsumers() error {
	if s.consumers != nil {
		return nil
	}
	cs, err := s.fleet.Consumers("aggregator")
	if err != nil {
		return err
	}
	s.consumers = cs
	return nil
}

// drainSequential is the Workers == 1 path: one goroutine round-robins
// the consumers until all are dry.
func (s *System) drainSequential() ([]aggregator.Result, error) {
	var fired []aggregator.Result
	for {
		any := false
		for src, c := range s.consumers {
			recs, err := c.Poll(4096)
			if err != nil {
				return fired, err
			}
			res, err := s.submitRecords(recs, src, s.now())
			fired = append(fired, res...)
			if err != nil {
				return fired, err
			}
			if len(recs) > 0 {
				any = true
			}
		}
		if !any {
			return fired, nil
		}
	}
}

// drainParallel runs one goroutine per proxy consumer. A consumer is
// only ever touched by its own goroutine, preserving the exactly-once
// positions of the persistent consumer group.
func (s *System) drainParallel() ([]aggregator.Result, error) {
	var (
		mu    sync.Mutex
		fired []aggregator.Result
		latch errLatch
		wg    sync.WaitGroup
	)
	for src, c := range s.consumers {
		wg.Add(1)
		go func(src int, c *pubsub.Consumer) {
			defer wg.Done()
			for !latch.failed() {
				recs, err := c.Poll(4096)
				if err != nil {
					latch.fail(err)
					return
				}
				if len(recs) == 0 {
					return
				}
				res, err := s.submitRecords(recs, src, s.now())
				if len(res) > 0 {
					mu.Lock()
					fired = append(fired, res...)
					mu.Unlock()
				}
				if err != nil {
					latch.fail(err)
					return
				}
			}
		}(src, c)
	}
	wg.Wait()
	return fired, latch.err()
}

// sharePool recycles the per-poll decode slice so the steady-state
// drain allocates nothing per batch.
var sharePool = sync.Pool{New: func() any { return new([]xorcrypt.Share) }}

// submitRecords decodes one polled batch of pub/sub records and feeds
// it to the aggregator in a single batch submission. On a decode error
// at record k the k records already decoded are still submitted before
// the error returns — the same partial progress as decoding and
// submitting one record at a time. Records are deep copies handed over
// by Poll, so payload ownership transfers cleanly to the join state.
func (s *System) submitRecords(recs []pubsub.Record, src int, now time.Time) ([]aggregator.Result, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	sp := sharePool.Get().(*[]xorcrypt.Share)
	shares := (*sp)[:0]
	var decErr error
	for _, rec := range recs {
		share, err := proxy.DecodeRecord(rec)
		if err != nil {
			decErr = err
			break
		}
		shares = append(shares, share)
	}
	res, err := s.agg.SubmitShareBatch(shares, src, now)
	// Drop the payload references before pooling: the aggregator owns
	// them now, and a pooled slice must not pin them.
	clear(shares)
	*sp = shares[:0]
	sharePool.Put(sp)
	if err == nil {
		err = decErr
	}
	return res, err
}

// AdvanceTo pushes the aggregator's watermark to the event time of the
// given epoch, closing any finished windows.
func (s *System) AdvanceTo(epoch uint64) ([]aggregator.Result, error) {
	t := s.cfg.Origin.Add(time.Duration(epoch) * s.cfg.Query.Frequency)
	return s.agg.AdvanceTo(t)
}

// Flush drains anything still sitting at the proxies and closes all
// open windows (end of run). Windows fired by the final drain are
// returned together with the flushed ones, merged in window-start
// order — earlier versions discarded the drain's results, silently
// dropping any window the last batch of shares pushed past the
// watermark.
func (s *System) Flush() ([]aggregator.Result, error) {
	drained, err := s.drain()
	if err != nil {
		return nil, err
	}
	final, err := s.agg.Flush()
	if err != nil {
		return drained, err
	}
	merged := append(drained, final...)
	aggregator.SortResults(merged, s.agg.QueryOrder())
	return merged, nil
}

// EnableFeedback installs the adaptive controller (paper §5): after each
// result, call Feedback with it to let the controller re-tune s; clients
// are re-subscribed automatically when the parameters change. In
// MultiQuery mode every query gets its own controller (created lazily
// from the query's registered parameters), so one noisy query's budget
// re-tuning never disturbs another's.
func (s *System) EnableFeedback(targetLoss, sMin, sMax float64) error {
	if s.cfg.MultiQuery {
		if targetLoss <= 0 || sMin <= 0 || sMax > 1 || sMin > sMax {
			return fmt.Errorf("%w: feedback target=%v bounds=[%v,%v]", ErrConfig, targetLoss, sMin, sMax)
		}
		s.ctrlMu.Lock()
		s.fbTarget, s.fbMin, s.fbMax = targetLoss, sMin, sMax
		s.fbEnabled = true
		s.ctrlMu.Unlock()
		return nil
	}
	ctrl, err := budget.NewController(s.params, targetLoss, sMin, sMax)
	if err != nil {
		return err
	}
	s.ctrl = ctrl
	return nil
}

// Feedback folds a window result into its query's controller and
// redistributes the parameters when the sampling fraction moved — in
// MultiQuery mode through the registry (revision bump, control-topic
// announcement, client re-subscription at the next sync), in legacy
// mode by direct re-subscription. It returns the parameters now in
// force for that query.
func (s *System) Feedback(res aggregator.Result) (budget.Params, error) {
	if s.cfg.MultiQuery {
		return s.feedbackMulti(res)
	}
	if s.ctrl == nil {
		return s.params, fmt.Errorf("%w: feedback not enabled", ErrConfig)
	}
	next := s.ctrl.Update(aggregator.RelativeWidth(res))
	if next.S == s.params.S {
		return s.params, nil
	}
	s.params = next
	for _, c := range s.clients {
		if err := c.Subscribe(s.signed, next); err != nil {
			return next, err
		}
	}
	return next, nil
}

func (s *System) feedbackMulti(res aggregator.Result) (budget.Params, error) {
	s.ctrlMu.Lock()
	if !s.fbEnabled {
		s.ctrlMu.Unlock()
		return budget.Params{}, fmt.Errorf("%w: feedback not enabled", ErrConfig)
	}
	entry, ok := s.registry.Entry(res.Query)
	if !ok {
		s.ctrlMu.Unlock()
		return budget.Params{}, fmt.Errorf("core: feedback for unknown query %s", res.Query)
	}
	ctrl := s.ctrls[res.Query]
	if ctrl == nil {
		c, err := budget.NewController(entry.Params, s.fbTarget, s.fbMin, s.fbMax)
		if err != nil {
			s.ctrlMu.Unlock()
			return budget.Params{}, err
		}
		s.ctrls[res.Query] = c
		ctrl = c
	}
	prev := ctrl.Params()
	next := ctrl.Update(aggregator.RelativeWidth(res))
	s.ctrlMu.Unlock()
	if next.S == prev.S {
		return next, nil
	}
	// Redistribute: the registry bumps the entry's revision and
	// re-announces; clients redraw their subscription at the sync below,
	// and the aggregator swaps the stored parameters in place.
	if err := s.registry.Register(entry.Signed, next); err != nil {
		return next, err
	}
	if err := s.agg.AddQuery(aggregator.QuerySpec{Query: entry.Signed.Query, Params: next}); err != nil {
		return next, err
	}
	_, err := s.follower.Sync()
	return next, err
}

// Close releases proxies and the historical store.
func (s *System) Close() {
	if s.fleet != nil {
		s.fleet.Close()
	}
	if s.store != nil {
		s.store.Close()
	}
}
