package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/minisql"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/workload"
)

// multiQueryConfig is the shared fleet both the multi-query run and
// every solo reference run are built from — identical population, data,
// seed, and parameters; only the query set differs.
func multiQueryConfig(t *testing.T, clients int) Config {
	t.Helper()
	return Config{
		Clients: clients,
		Proxies: 3,
		Seed:    1234,
		Populate: func(i int, db *minisql.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			return workload.PopulateTaxi(db, rng, 3, time.Unix(1000, 0), time.Minute)
		},
	}
}

// testQueries builds Q taxi queries with distinct serials and varied
// window geometries (different analysts every third query).
func testQueries(t *testing.T, n int) []*query.Query {
	t.Helper()
	analysts := []string{"alice", "bob", "carol"}
	out := make([]*query.Query, n)
	for i := range out {
		q, err := workload.TaxiQuery(analysts[i%len(analysts)], uint64(i+1),
			time.Second, time.Duration(2+i%3)*time.Second, time.Duration(2+i%3)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = q
	}
	return out
}

// runMulti runs all queries concurrently over one shared fleet and
// returns the fired results grouped per query.
func runMulti(t *testing.T, cfg Config, params budget.Params, queries []*query.Query, epochs int) map[query.ID][]aggregator.Result {
	t.Helper()
	cfg.MultiQuery = true
	cfg.Params = &params
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, q := range queries {
		if err := sys.Register(q); err != nil {
			t.Fatalf("register %s: %v", q.QID, err)
		}
	}
	var all []aggregator.Result
	for e := 0; e < epochs; e++ {
		res, _, err := sys.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, res...)
	}
	final, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, final...)
	st := sys.Aggregator().Stats()
	if st.UnknownQuery != 0 || st.LengthMismatch != 0 || st.Malformed != 0 {
		t.Fatalf("multi-query run dropped messages: %+v", st)
	}
	return aggregator.ByQuery(all)
}

// runSolo runs one query alone in a legacy single-query system with the
// same seed and fleet shape.
func runSolo(t *testing.T, cfg Config, params budget.Params, q *query.Query, epochs int) []aggregator.Result {
	t.Helper()
	cfg.Query = q
	cfg.Params = &params
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var all []aggregator.Result
	for e := 0; e < epochs; e++ {
		res, _, err := sys.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, res...)
	}
	final, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return append(all, final...)
}

// TestMultiQueryMatchesSolo is the multi-query determinism gate: Q
// concurrent queries over one shared fleet must produce, for every
// query, results byte-identical to that query running alone in a
// single-query system under the same seed — per-query sampling,
// randomization, windowing, and estimation are fully independent even
// though clients, proxies, transport, and the aggregator's join are all
// shared.
func TestMultiQueryMatchesSolo(t *testing.T) {
	const (
		clients = 24
		epochs  = 7
	)
	params := budget.Params{S: 0.8, RR: rr.Params{P: 0.9, Q: 0.6}}
	queries := testQueries(t, 3)

	got := runMulti(t, multiQueryConfig(t, clients), params, queries, epochs)

	for _, q := range queries {
		want := runSolo(t, multiQueryConfig(t, clients), params, q, epochs)
		if len(want) == 0 {
			t.Fatalf("solo run of %s produced no windows", q.QID)
		}
		if !reflect.DeepEqual(got[q.QID], want) {
			t.Errorf("query %s: multi-query results differ from solo run\nmulti: %+v\nsolo:  %+v",
				q.QID, got[q.QID], want)
		}
	}
}

// TestMultiQueryRegisterAndStopMidRun exercises control-plane dynamics:
// a query registered mid-run starts producing from the next epoch, a
// stopped query flushes its windows and goes quiet, and the stopped
// query's in-flight shares surface in the demux statistics instead of
// vanishing.
func TestMultiQueryRegisterAndStopMidRun(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	queries := testQueries(t, 2)

	cfg := multiQueryConfig(t, 6)
	cfg.MultiQuery = true
	cfg.Params = &params
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if err := sys.Register(queries[0]); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-run registration: picked up by every client at the next epoch.
	if err := sys.Register(queries[1]); err != nil {
		t.Fatal(err)
	}
	for _, c := range sys.Clients() {
		if got := c.Subscriptions(); got != 2 {
			t.Fatalf("client %s has %d subscriptions, want 2", c.ID(), got)
		}
	}
	if _, _, err := sys.RunEpoch(); err != nil {
		t.Fatal(err)
	}

	// Mid-run stop: q0's windows flush now, clients drop it.
	flushed, err := sys.StopQuery(queries[0].QID)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range flushed {
		if res.Query != queries[0].QID {
			t.Fatalf("flushed window belongs to %s", res.Query)
		}
	}
	for _, c := range sys.Clients() {
		if got := c.Subscriptions(); got != 1 {
			t.Fatalf("client %s has %d subscriptions after stop, want 1", c.ID(), got)
		}
	}
	if _, _, err := sys.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	// Only q1 remains registered.
	if active := sys.Aggregator().ActiveQueries(); len(active) != 1 || active[0] != queries[1].QID {
		t.Fatalf("aggregator active queries = %v", active)
	}
	// Double stop errors cleanly.
	if _, err := sys.StopQuery(queries[0].QID); err == nil {
		t.Fatal("second StopQuery succeeded")
	}
	// The stopped query's decoded answers stay visible after removal —
	// counters never move backwards across RemoveQuery.
	decodedBefore := sys.Aggregator().Decoded()
	if decodedBefore == 0 {
		t.Fatal("no decoded answers recorded")
	}

	// Stopping the last query leaves an idle fleet; epochs must keep
	// running (zero participants), not error on unsubscribed clients.
	if _, err := sys.StopQuery(queries[1].QID); err != nil {
		t.Fatal(err)
	}
	res, participants, err := sys.RunEpoch()
	if err != nil {
		t.Fatalf("idle-fleet epoch: %v", err)
	}
	if participants != 0 || len(res) != 0 {
		t.Fatalf("idle-fleet epoch produced %d participants, %d results", participants, len(res))
	}
	if got := sys.Aggregator().Decoded(); got != decodedBefore {
		t.Errorf("Decoded moved %d → %d across removals", decodedBefore, got)
	}
}

// TestMultiQueryIdleFleetStart pins that a MultiQuery system may start
// with no queries at all and run epochs until the first registration.
func TestMultiQueryIdleFleetStart(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	cfg := multiQueryConfig(t, 4)
	cfg.MultiQuery = true
	cfg.Params = &params
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, participants, err := sys.RunEpoch(); err != nil || participants != 0 {
		t.Fatalf("idle epoch: participants=%d err=%v", participants, err)
	}
	q := testQueries(t, 1)[0]
	if err := sys.Register(q); err != nil {
		t.Fatal(err)
	}
	if _, participants, err := sys.RunEpoch(); err != nil || participants != 4 {
		t.Fatalf("first active epoch: participants=%d err=%v", participants, err)
	}
}

// TestMultiQueryPerQueryFeedback pins per-query budget isolation: a
// high-error result for one query raises that query's sampling fraction
// and redistributes it through the control plane without touching the
// other query's parameters.
func TestMultiQueryPerQueryFeedback(t *testing.T) {
	params := budget.Params{S: 0.2, RR: rr.Params{P: 0.5, Q: 0.6}}
	queries := testQueries(t, 2)

	cfg := multiQueryConfig(t, 50)
	cfg.MultiQuery = true
	cfg.Params = &params
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, q := range queries {
		if err := sys.Register(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.EnableFeedback(0.02, 0.05, 0.95); err != nil {
		t.Fatal(err)
	}
	var results []aggregator.Result
	for e := 0; e < 5; e++ {
		res, _, err := sys.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res...)
	}
	final, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, final...)
	byQ := aggregator.ByQuery(results)
	if len(byQ[queries[0].QID]) == 0 {
		t.Fatal("no results for the first query")
	}
	after, err := sys.Feedback(byQ[queries[0].QID][0])
	if err != nil {
		t.Fatal(err)
	}
	if after.S <= params.S {
		t.Errorf("s did not rise under high error: %v -> %v", params.S, after.S)
	}
	// The other query's registered parameters are untouched.
	other, ok := sys.Registry().Entry(queries[1].QID)
	if !ok {
		t.Fatal("second query missing from registry")
	}
	if other.Params.S != params.S {
		t.Errorf("feedback for query 0 moved query 1's s to %v", other.Params.S)
	}
	// Clients keep answering under the redistributed parameters.
	if _, _, err := sys.RunEpoch(); err != nil {
		t.Fatal(err)
	}
}
