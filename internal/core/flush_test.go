package core

import (
	"math/rand"
	"testing"
	"time"

	"privapprox/internal/budget"
	"privapprox/internal/minisql"
	"privapprox/internal/rr"
	"privapprox/internal/workload"
)

// Regression: Flush used to discard the window results fired during its
// final drain, returning only what agg.Flush closed afterwards. Any
// window the last undrained batch of shares pushed past the watermark
// vanished.
func TestFlushReturnsWindowsFiredDuringFinalDrain(t *testing.T) {
	// Tumbling 2s windows at 1s epochs, default lateness = slide = 2s:
	// window [2,4) fires once the watermark reaches 4s, i.e. when an
	// epoch-6 answer (event time 6s) is decoded. Epochs 0..5 run — and
	// drain — normally; epoch 6 is answered WITHOUT draining, so its
	// shares are still sitting at the proxies when Flush runs. Flush's
	// internal drain then decodes them and fires [2,4) mid-drain, while
	// agg.Flush closes the still-open [4,6) and [6,8).
	q, err := workload.TaxiQuery("flush", 1, time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	params := budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}}
	const clients = 20
	sys, err := New(Config{
		Clients: clients,
		Query:   q,
		Params:  &params,
		Seed:    7,
		Populate: func(i int, db *minisql.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			return workload.PopulateTaxi(db, rng, 3, time.Unix(1000, 0), time.Minute)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	var early []int64                     // window starts (unix seconds offsets) fired by RunEpoch
	origin := time.Unix(1_700_000_000, 0) // the default Config.Origin
	for e := 0; e < 6; e++ {
		res, _, err := sys.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			early = append(early, int64(r.Window.Start.Sub(origin)/time.Second))
		}
	}
	// Epoch 6 answers bypass RunEpoch so nothing drains them before
	// Flush does.
	for _, c := range sys.Clients() {
		if _, err := c.AnswerOnce(6); err != nil {
			t.Fatal(err)
		}
	}

	results, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("Flush returned %d windows, want 3 (drain-fired window dropped?): %+v, earlier %v",
			len(results), results, early)
	}
	want := []struct {
		startSec  int64
		responses int
	}{
		{2, 2 * clients}, // fired during Flush's drain — the dropped one
		{4, 2 * clients},
		{6, 1 * clients},
	}
	for i, res := range results {
		if got := int64(res.Window.Start.Sub(origin) / time.Second); got != want[i].startSec {
			t.Errorf("window %d starts at +%ds, want +%ds", i, got, want[i].startSec)
		}
		if res.Responses != want[i].responses {
			t.Errorf("window %d has %d responses, want %d", i, res.Responses, want[i].responses)
		}
	}
}
