package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/minisql"
	"privapprox/internal/rr"
	"privapprox/internal/workload"
	"privapprox/internal/xorcrypt"
)

// Failure injection: the threat model (§2.2) allows malicious clients
// and flaky proxies; these tests check the aggregator degrades
// gracefully instead of corrupting results.

// TestMaliciousGarbageSharesDoNotPoisonResults injects clients that
// send undecodable payloads alongside honest clients.
func TestMaliciousGarbageSharesDoNotPoisonResults(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	const honest = 50
	sys, err := New(taxiSystemConfig(t, honest, params))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Honest epoch.
	if _, _, err := sys.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	// A malicious "client" floods both proxies with garbage shares.
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		shares, err := splitter.Split([]byte("!!not-a-valid-answer-message!!"))
		if err != nil {
			t.Fatal(err)
		}
		for j, sh := range shares {
			if err := sys.Fleet().Proxy(j).Submit(sh); err != nil {
				t.Fatal(err)
			}
		}
	}
	results, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no window fired")
	}
	// Windows span 4 epochs; only one epoch ran, so responses = honest.
	if results[0].Responses != honest {
		t.Errorf("responses = %d, want %d (garbage excluded)", results[0].Responses, honest)
	}
	if sys.Aggregator().Malformed() != 20 {
		t.Errorf("malformed = %d, want 20", sys.Aggregator().Malformed())
	}
}

// TestReplayedSharesRejected replays a full honest message.
func TestReplayedSharesRejected(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	q, err := workload.TaxiQuery("analyst", 1, time.Second, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := taxiSystemConfig(t, 10, params)
	cfg.Query = q
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Craft one honest-looking message and submit it twice via the
	// proxies (a replay attack on the answer stream).
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := answer.OneHot(len(q.Buckets), 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	shares, err := splitter.Split(raw)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ { // original + two replays
		for j, sh := range shares {
			if err := sys.Fleet().Proxy(j).Submit(sh); err != nil {
				t.Fatal(err)
			}
		}
	}
	results, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("windows = %d", len(results))
	}
	if results[0].Responses != 1 {
		t.Errorf("responses = %d, want 1 (replays rejected)", results[0].Responses)
	}
	if sys.Aggregator().Duplicates() == 0 {
		t.Error("duplicate counter not incremented")
	}
}

// TestProxyShareLossLeavesPartialJoins drops one proxy's share stream
// entirely: messages never complete, the sweep reclaims them, and
// results simply have fewer responses.
func TestProxyShareLossLeavesPartialJoins(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	q, err := workload.TaxiQuery("analyst", 1, time.Second, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := taxiSystemConfig(t, 10, params)
	cfg.Query = q
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	vec, _ := answer.OneHot(len(q.Buckets), 0)
	raw, _ := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	// 5 messages lose their key share (only proxy 0 receives data).
	for i := 0; i < 5; i++ {
		shares, err := splitter.Split(raw)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Fleet().Proxy(0).Submit(shares[0]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Aggregator().PendingJoins(); got != 5 {
		t.Fatalf("pending joins = %d, want 5", got)
	}
	// Sweep far in the future reclaims memory.
	if _, err := sys.Aggregator().AdvanceTo(time.Now().Add(48 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if got := sys.Aggregator().PendingJoins(); got != 0 {
		t.Errorf("pending joins after sweep = %d", got)
	}
	if sys.Aggregator().Decoded() != 0 {
		t.Errorf("decoded = %d, want 0 — incomplete joins never decode", sys.Aggregator().Decoded())
	}
}

// TestBiasedClientsShiftOnlyTheirMass models result-distortion clients
// (§2.2 threat model): k dishonest clients always report the last
// bucket. The aggregator cannot detect this (by design — answers are
// anonymous), but honest buckets remain accurate.
func TestBiasedClientsShiftOnlyTheirMass(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	q, err := workload.TaxiQuery("analyst", 1, time.Second, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const honest, biased = 90, 10
	exactHonest := make([]int, len(q.Buckets))
	sys, err := New(Config{
		Clients: honest,
		Query:   q,
		Params:  &params,
		Seed:    5,
		Populate: func(i int, db *minisql.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			if err := workload.PopulateTaxi(db, rng, 1, time.Unix(0, 0), time.Minute); err != nil {
				return err
			}
			rows, err := db.Query("SELECT distance FROM rides")
			if err != nil {
				return err
			}
			if idx := q.Buckets.Index(rows.Rows[0][0].String()); idx >= 0 {
				exactHonest[idx]++
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, _, err := sys.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	// Biased clients inject well-formed answers for the last bucket.
	splitter, _ := xorcrypt.NewSplitter(2, nil, nil)
	last := len(q.Buckets) - 1
	for i := 0; i < biased; i++ {
		vec, _ := answer.OneHot(len(q.Buckets), last)
		raw, _ := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
		shares, _ := splitter.Split(raw)
		for j, sh := range shares {
			if err := sys.Fleet().Proxy(j).Submit(sh); err != nil {
				t.Fatal(err)
			}
		}
	}
	results, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.Responses != honest+biased {
		t.Fatalf("responses = %d", res.Responses)
	}
	// The scale-up factor is (honest+biased slots)/(honest+biased
	// answers) = 1 here since population counts only honest clients...
	// responses exceed slots, so effPopulation = responses and counts
	// are raw. Bucket 0's count must match the honest ground truth.
	if math.Abs(res.Buckets[0].Estimate.Estimate-float64(exactHonest[0])) > 1e-9 {
		t.Errorf("bucket 0 = %v, want %v", res.Buckets[0].Estimate.Estimate, exactHonest[0])
	}
	// The attacked bucket gained exactly the biased mass.
	wantLast := float64(exactHonest[last] + biased)
	if math.Abs(res.Buckets[last].Estimate.Estimate-wantLast) > 1e-9 {
		t.Errorf("bucket %d = %v, want %v", last, res.Buckets[last].Estimate.Estimate, wantLast)
	}
}

// TestLateAnswersAreDropped delivers an answer for a long-closed epoch.
func TestLateAnswersAreDropped(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	q, err := workload.TaxiQuery("analyst", 1, time.Second, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := taxiSystemConfig(t, 5, params)
	cfg.Query = q
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	// Run epochs 0..4, then advance the watermark well past them.
	for e := 0; e < 5; e++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	dropBefore := sys.Aggregator().Decoded()
	// A straggler answer for epoch 0 arrives now.
	splitter, _ := xorcrypt.NewSplitter(2, nil, nil)
	vec, _ := answer.OneHot(len(q.Buckets), 0)
	raw, _ := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	shares, _ := splitter.Split(raw)
	for j, sh := range shares {
		if err := sys.Fleet().Proxy(j).Submit(sh); err != nil {
			t.Fatal(err)
		}
	}
	results, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// The late answer decodes but must not resurrect the closed window.
	if sys.Aggregator().Decoded() != dropBefore+1 {
		t.Errorf("decoded = %d", sys.Aggregator().Decoded())
	}
	for _, res := range results {
		if res.Window.Start.Before(EpochStart(sys, 1)) && res.Responses > 5 {
			t.Errorf("late answer leaked into closed window %v", res.Window)
		}
	}
}

// EpochStart exposes the event-time origin arithmetic for tests.
func EpochStart(s *System, epoch uint64) time.Time {
	return s.cfg.Origin.Add(time.Duration(epoch) * s.cfg.Query.Frequency)
}
