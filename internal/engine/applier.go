package engine

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"time"

	"privapprox/internal/budget"
	"privapprox/internal/minisql"
	"privapprox/internal/pubsub"
	"privapprox/internal/query"
)

// Subscriber is the client-side surface the applier reconciles —
// client.Client implements it.
type Subscriber interface {
	SubscribeQuery(signed *query.Signed, analystKey ed25519.PublicKey, params budget.Params) error
	UnsubscribeQuery(id query.ID) bool
}

// ShedSetter is the optional overload-control surface: subscribers that
// also implement it (client.Client does) receive per-query shed
// thresholds from snapshots. A Subscriber without it simply never
// sheds — the control plane degrades gracefully for minimal clients.
type ShedSetter interface {
	SetShed(id query.ID, shed float64) bool
}

// Applier reconciles a set of clients against query-set snapshots. It
// is the client-process half of query distribution: feed it every
// control payload observed (in any order, with duplicates and gaps) and
// it applies exactly the newest snapshot, diffing by per-entry revision
// so a client's per-query coin stream is only redrawn when that query's
// entry actually changed.
//
// Trust: every entry's signature is verified against its announced
// analyst key, which detects in-flight tampering but does not by itself
// authenticate the analyst — whoever can publish to the control topic
// can announce a key of their own making. Deployments that need the
// paper's "clients check the query really came from the claimed
// analyst" property pin keys with Trust: once any key is pinned,
// entries from unpinned analysts (or with a key that differs from the
// pin) are rejected wholesale.
//
// All clients managed by one applier converge to identical active sets
// in identical order, because the snapshot itself is ordered.
type Applier struct {
	clients []Subscriber
	trusted map[string]ed25519.PublicKey
	version uint64
	applied bool
	revs    map[string]uint64   // ID.String() → last applied revision
	sheds   map[string]float64  // ID.String() → last applied shed threshold
	active  map[string]query.ID // currently subscribed
}

// NewApplier manages the given clients (typically every logical client
// hosted by one process).
func NewApplier(clients ...Subscriber) *Applier {
	return &Applier{
		clients: clients,
		trusted: make(map[string]ed25519.PublicKey),
		revs:    make(map[string]uint64),
		sheds:   make(map[string]float64),
		active:  make(map[string]query.ID),
	}
}

// Trust pins an analyst's public key. With at least one pin installed,
// snapshots carrying entries from unpinned analysts — or entries whose
// announced key differs from the pin — are rejected entirely.
func (ap *Applier) Trust(analyst string, pub ed25519.PublicKey) {
	ap.trusted[analyst] = pub
}

// Version returns the version of the newest applied snapshot.
func (ap *Applier) Version() uint64 { return ap.version }

// ActiveQueries returns how many queries are currently subscribed.
func (ap *Applier) ActiveQueries() int { return len(ap.active) }

// ApplyPayload decodes one control payload and applies it if it is
// newer than anything seen so far. Undecodable payloads are reported;
// stale or duplicate snapshots are ignored without error.
func (ap *Applier) ApplyPayload(payload []byte) error {
	qs, err := DecodeQuerySet(payload)
	if err != nil {
		return err
	}
	return ap.Apply(qs)
}

// Apply reconciles the clients against one snapshot. Snapshots older
// than (or equal to) the newest applied one are ignored — that single
// rule makes the applier converge under arbitrary loss, reordering,
// and duplication, as long as the newest snapshot is eventually
// observed.
func (ap *Applier) Apply(qs *QuerySet) error {
	if ap.applied && qs.Version <= ap.version {
		return nil
	}

	// Verify and validate every entry before touching any client: a
	// snapshot either applies wholly or not at all (the SQL is parsed
	// here too, so a mid-apply subscription failure cannot leave the
	// clients half-reconciled).
	for i := range qs.Entries {
		e := &qs.Entries[i]
		if e.Signed == nil || e.Signed.Query == nil {
			return fmt.Errorf("%w: snapshot entry %d without query", ErrControlWire, i)
		}
		q := e.Signed.Query
		if err := q.Validate(); err != nil {
			return err
		}
		key := e.AnalystKey
		if len(ap.trusted) > 0 {
			pin, ok := ap.trusted[q.QID.Analyst]
			if !ok {
				return fmt.Errorf("engine: analyst %q not pinned", q.QID.Analyst)
			}
			if !pin.Equal(key) {
				return fmt.Errorf("engine: announced key for %q differs from pinned key", q.QID.Analyst)
			}
		}
		if err := e.Signed.Verify(key); err != nil {
			return fmt.Errorf("query %s: %w", q.QID, err)
		}
		if err := e.Params.Validate(); err != nil {
			return err
		}
		stmt, err := minisql.Parse(q.SQL)
		if err != nil {
			return fmt.Errorf("query %s SQL: %w", q.QID, err)
		}
		if _, ok := stmt.(*minisql.SelectStmt); !ok {
			return fmt.Errorf("query %s: not a SELECT", q.QID)
		}
	}

	next := make(map[string]query.ID, len(qs.Entries))
	for i := range qs.Entries {
		e := &qs.Entries[i]
		id := e.Signed.Query.QID
		key := id.String()
		next[key] = id
		shed := e.Shed
		if !(shed > 0) || shed > 1 {
			shed = 1
		}
		rev, seen := ap.revs[key]
		_, isActive := ap.active[key]
		if isActive && seen && rev == e.Rev {
			// Unchanged entry: leave the subscription (and its coin
			// stream) untouched, but forward a moved shed threshold —
			// shed changes deliberately do not bump Rev.
			if ap.sheds[key] != shed {
				ap.setShed(id, shed)
				ap.sheds[key] = shed
			}
			continue
		}
		for _, c := range ap.clients {
			if err := c.SubscribeQuery(e.Signed, e.AnalystKey, e.Params); err != nil {
				return fmt.Errorf("subscribe %s: %w", id, err)
			}
		}
		// Re-assert the snapshot's threshold after (re-)subscribing:
		// clients carry the old threshold across a re-subscription, and
		// a fresh subscription starts unshed — either way the snapshot
		// is authoritative.
		ap.setShed(id, shed)
		ap.revs[key] = e.Rev
		ap.sheds[key] = shed
		ap.active[key] = id
	}
	for key, id := range ap.active {
		if _, ok := next[key]; ok {
			continue
		}
		for _, c := range ap.clients {
			c.UnsubscribeQuery(id)
		}
		delete(ap.active, key)
		delete(ap.revs, key)
		delete(ap.sheds, key)
	}
	ap.version = qs.Version
	ap.applied = true
	return nil
}

// setShed forwards one query's shed threshold to every client that
// opts into overload control.
func (ap *Applier) setShed(id query.ID, shed float64) {
	for _, c := range ap.clients {
		if ss, ok := c.(ShedSetter); ok {
			ss.SetShed(id, shed)
		}
	}
}

// Follower drives an Applier from a pub/sub control-topic consumer —
// the piece a client process runs so networked deployments pick up
// queries dynamically.
type Follower struct {
	consumer *pubsub.Consumer
	applier  *Applier
}

// NewFollower builds a follower over one control-topic consumer.
func NewFollower(consumer *pubsub.Consumer, applier *Applier) *Follower {
	return &Follower{consumer: consumer, applier: applier}
}

// Applier returns the underlying applier.
func (f *Follower) Applier() *Applier { return f.applier }

// Sync drains every control record currently available and applies
// them, returning how many records were observed. Records that are not
// decodable control payloads are skipped — garbage on the topic must
// not wedge the client — but a genuine apply failure (bad signature,
// unpinned analyst, invalid query) is returned. The consumer's
// position has already advanced past the poison record, so the next
// Sync makes progress.
func (f *Follower) Sync() (int, error) {
	seen := 0
	for {
		recs, err := f.consumer.Poll(256)
		if err != nil {
			return seen, err
		}
		if len(recs) == 0 {
			return seen, nil
		}
		for _, rec := range recs {
			seen++
			if err := f.applier.ApplyPayload(rec.Value); err != nil {
				if errors.Is(err, ErrControlWire) {
					continue
				}
				return seen, err
			}
		}
	}
}

// WaitActive blocks (polling the control topic) until at least min
// queries are active or the timeout passes.
func (f *Follower) WaitActive(min int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if _, err := f.Sync(); err != nil {
			return err
		}
		if f.applier.ActiveQueries() >= min {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("engine: %d of %d queries active after %v",
				f.applier.ActiveQueries(), min, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
