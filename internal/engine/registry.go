package engine

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"

	"privapprox/internal/budget"
	"privapprox/internal/query"
)

// Errors reported by the registry.
var (
	// ErrUnknownAnalyst reports a submission from an analyst with no
	// trusted public key.
	ErrUnknownAnalyst = errors.New("engine: unknown analyst")
	// ErrWireCollision reports two distinct query IDs hashing to the
	// same 64-bit wire identifier — answer messages carry only the
	// hash, so colliding queries would be indistinguishable at the
	// aggregator.
	ErrWireCollision = errors.New("engine: wire query-ID collision")
	// ErrUnknownQuery reports a stop for a query that is not active.
	ErrUnknownQuery = errors.New("engine: unknown query")
)

// wireIDOf derives the compact wire identifier the registry guards
// against collisions. A package variable so the collision error path is
// unit-testable: a genuine FNV-64 collision cannot be constructed in a
// test's lifetime, but the guard must still be exercised.
var wireIDOf = func(id query.ID) uint64 { return id.Uint64() }

// ControlSink receives serialized query-set announcements —
// proxy.Proxy/Fleet implement it over their control topics; tests use
// recording sinks.
type ControlSink interface {
	Announce(payload []byte) error
}

// ControlSinkFunc adapts a function to a ControlSink.
type ControlSinkFunc func(payload []byte) error

// Announce calls f.
func (f ControlSinkFunc) Announce(payload []byte) error { return f(payload) }

// Registry is the aggregator-side query control plane (paper §3.1): it
// accepts signed query submissions from analysts, verifies each
// signature against the analyst's trusted public key, guards the
// compact wire-ID space against collisions, and distributes versioned
// query-set snapshots to clients through attached control sinks.
//
// It is safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	trusted map[string]ed25519.PublicKey
	entries []Entry        // active queries, registration order
	index   map[string]int // ID.String() → position in entries
	byWire  map[uint64]query.ID
	version uint64
	sinks   []ControlSink
	// sinkVers[i] is the newest snapshot version sinks[i] acknowledged
	// (its Announce returned nil); 0 means it never took one. The gap
	// between version and sinkVers is a proxy's control-plane lag —
	// invisible before telemetry exposed it.
	sinkVers []uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		trusted: make(map[string]ed25519.PublicKey),
		index:   make(map[string]int),
		byWire:  make(map[uint64]query.ID),
	}
}

// Trust installs (or rotates) an analyst's public key. Only trusted
// analysts can register queries.
func (r *Registry) Trust(analyst string, pub ed25519.PublicKey) error {
	if analyst == "" || len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: analyst %q with %d-byte key", query.ErrInvalidQuery, analyst, len(pub))
	}
	r.mu.Lock()
	r.trusted[analyst] = pub
	r.mu.Unlock()
	return nil
}

// Register validates and admits one signed query with its derived
// system parameters, then broadcasts the updated snapshot.
// Re-registering an active query updates its parameters and bumps the
// entry's revision (the feedback redistribution path); registering a
// distinct query whose wire ID collides with an active one is rejected
// with ErrWireCollision.
func (r *Registry) Register(signed *query.Signed, params budget.Params) error {
	if signed == nil || signed.Query == nil {
		return fmt.Errorf("%w: nil query", query.ErrInvalidQuery)
	}
	q := signed.Query
	if err := q.Validate(); err != nil {
		return err
	}
	if err := params.Validate(); err != nil {
		return err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	pub, ok := r.trusted[q.QID.Analyst]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAnalyst, q.QID.Analyst)
	}
	if err := signed.Verify(pub); err != nil {
		return err
	}
	wire := wireIDOf(q.QID)
	if prev, ok := r.byWire[wire]; ok && prev != q.QID {
		return fmt.Errorf("%w: %s and %s both map to %#x", ErrWireCollision, prev, q.QID, wire)
	}
	entry := Entry{Signed: signed, AnalystKey: pub, Params: params, Shed: 1}
	if i, ok := r.index[q.QID.String()]; ok {
		entry.Rev = r.entries[i].Rev + 1
		// Re-registration retunes parameters; the overload shed threshold
		// is orthogonal standing state and carries over.
		entry.Shed = r.entries[i].Shed
		r.entries[i] = entry
	} else {
		r.index[q.QID.String()] = len(r.entries)
		r.entries = append(r.entries, entry)
		r.byWire[wire] = q.QID
	}
	return r.broadcastLocked()
}

// SetShed sets a query's overload shed threshold ∈ (0, 1] and
// broadcasts the updated snapshot. Unlike Register it does NOT bump the
// entry's Rev: appliers forward the new threshold to clients without
// re-subscribing, so actuating the SLO controller never redraws coin
// streams. Values outside (0, 1] normalize to 1 (no shedding).
func (r *Registry) SetShed(id query.ID, shed float64) error {
	if !(shed > 0) || shed > 1 {
		shed = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.index[id.String()]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownQuery, id)
	}
	if r.entries[i].Shed == shed {
		return nil
	}
	r.entries[i].Shed = shed
	return r.broadcastLocked()
}

// Stop deactivates a query and broadcasts the shrunken snapshot.
func (r *Registry) Stop(id query.ID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.index[id.String()]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownQuery, id)
	}
	r.entries = append(r.entries[:i], r.entries[i+1:]...)
	delete(r.index, id.String())
	delete(r.byWire, wireIDOf(id))
	for j := i; j < len(r.entries); j++ {
		r.index[r.entries[j].Signed.Query.QID.String()] = j
	}
	return r.broadcastLocked()
}

// Bootstrap adopts a replayed snapshot — the restart path for a control
// plane whose proxies journal their control topics: a restarted
// submitter reads the newest announced QuerySet back from a proxy and
// bootstraps its registry from it, so the version counter resumes
// *past* the replayed announcements instead of restarting at 1 (which
// newest-snapshot-wins appliers would ignore forever). Each entry's
// signature is verified against the analyst key it carries, that key is
// installed in the trust store, and wire-ID collisions are rejected.
// Bootstrap only moves forward: a snapshot older than the registry's
// current version is rejected. Attached sinks are not re-announced —
// the replayed topic already carries the snapshot.
func (r *Registry) Bootstrap(qs *QuerySet) error {
	if qs == nil {
		return fmt.Errorf("%w: nil snapshot", query.ErrInvalidQuery)
	}
	entries := make([]Entry, 0, len(qs.Entries))
	index := make(map[string]int, len(qs.Entries))
	byWire := make(map[uint64]query.ID, len(qs.Entries))
	trusted := make(map[string]ed25519.PublicKey)
	for _, e := range qs.Entries {
		if e.Signed == nil || e.Signed.Query == nil {
			return fmt.Errorf("%w: snapshot entry without query", query.ErrInvalidQuery)
		}
		q := e.Signed.Query
		if err := q.Validate(); err != nil {
			return err
		}
		if err := e.Params.Validate(); err != nil {
			return err
		}
		if len(e.AnalystKey) != ed25519.PublicKeySize {
			return fmt.Errorf("%w: %q", ErrUnknownAnalyst, q.QID.Analyst)
		}
		if err := e.Signed.Verify(e.AnalystKey); err != nil {
			return err
		}
		wire := wireIDOf(q.QID)
		if prev, ok := byWire[wire]; ok && prev != q.QID {
			return fmt.Errorf("%w: %s and %s both map to %#x", ErrWireCollision, prev, q.QID, wire)
		}
		if _, ok := index[q.QID.String()]; ok {
			return fmt.Errorf("%w: duplicate entry %s", query.ErrInvalidQuery, q.QID)
		}
		if !(e.Shed > 0) || e.Shed > 1 {
			e.Shed = 1
		}
		index[q.QID.String()] = len(entries)
		byWire[wire] = q.QID
		entries = append(entries, e)
		trusted[q.QID.Analyst] = e.AnalystKey
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if qs.Version < r.version {
		return fmt.Errorf("%w: bootstrap snapshot version %d behind registry version %d",
			query.ErrInvalidQuery, qs.Version, r.version)
	}
	for analyst, pub := range trusted {
		r.trusted[analyst] = pub
	}
	r.entries = entries
	r.index = index
	r.byWire = byWire
	r.version = qs.Version
	return nil
}

// AttachSink adds a control sink and immediately sends it the current
// snapshot, so late-joining distribution channels catch up.
func (r *Registry) AttachSink(s ControlSink) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sinks = append(r.sinks, s)
	r.sinkVers = append(r.sinkVers, 0)
	snap := r.snapshotLocked()
	payload, err := snap.MarshalBinary()
	if err != nil {
		return err
	}
	if err := s.Announce(payload); err != nil {
		return err
	}
	r.sinkVers[len(r.sinkVers)-1] = r.version
	return nil
}

// Snapshot returns the current query set.
func (r *Registry) Snapshot() QuerySet {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// Version returns the current snapshot version.
func (r *Registry) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// Entry returns the active entry for a query ID, reporting whether it
// exists.
func (r *Registry) Entry(id query.ID) (Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.index[id.String()]
	if !ok {
		return Entry{}, false
	}
	return r.entries[i], true
}

// Active returns the active query IDs in registration order.
func (r *Registry) Active() []query.ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]query.ID, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.Signed.Query.QID
	}
	return out
}

func (r *Registry) snapshotLocked() QuerySet {
	qs := QuerySet{Version: r.version}
	qs.Entries = append(qs.Entries, r.entries...)
	return qs
}

// broadcastLocked bumps the version and announces the new snapshot to
// every sink. Caller holds r.mu. A sink failure is returned but does
// not roll the registration back — the next successful broadcast
// carries the full state anyway (snapshots, not deltas).
func (r *Registry) broadcastLocked() error {
	r.version++
	snap := r.snapshotLocked()
	payload, err := snap.MarshalBinary()
	if err != nil {
		return err
	}
	var firstErr error
	for i, s := range r.sinks {
		if err := s.Announce(payload); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.sinkVers[i] = r.version
	}
	return firstErr
}

// SinkVersions returns, per attached sink, the newest snapshot version
// it acknowledged (0 = never); index order matches attachment order.
func (r *Registry) SinkVersions() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.sinkVers...)
}
