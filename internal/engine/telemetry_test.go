package engine

import (
	"errors"
	"testing"

	"privapprox/internal/telemetry"
)

// failingSink refuses every announcement after the first.
type failingSink struct{ calls int }

var errSinkDown = errors.New("sink down")

func (s *failingSink) Announce(p []byte) error {
	s.calls++
	if s.calls > 1 {
		return errSinkDown
	}
	return nil
}

// TestRegistrySinkVersionGauges pins the convergence surface: each
// attached sink's newest acked snapshot version is tracked and exported
// as a labeled gauge, so a sink stuck behind the registry version is
// visible as control_sink_version < control_version.
func TestRegistrySinkVersionGauges(t *testing.T) {
	_, priv := testKey(1)
	pub, _ := testKey(1)
	r := NewRegistry()
	if err := r.Trust("alice", pub); err != nil {
		t.Fatal(err)
	}

	good := &recordingSink{}
	stuck := &failingSink{}
	if err := r.AttachSink(good); err != nil {
		t.Fatal(err)
	}
	if err := r.AttachSink(stuck); err != nil {
		t.Fatal(err)
	}
	// Both sinks acked the initial (version 0) snapshot.
	if vs := r.SinkVersions(); len(vs) != 2 || vs[0] != 0 || vs[1] != 0 {
		t.Fatalf("SinkVersions after attach = %v, want [0 0]", vs)
	}

	// The broadcast of version 1 reaches the good sink; the stuck sink
	// refuses it and must stay pinned at its last acked version.
	signed := testSigned(t, "alice", 1, priv)
	if err := r.Register(signed, testParams()); err == nil {
		t.Fatal("Register should surface the failing sink's error")
	}
	if got := r.Version(); got != 1 {
		t.Fatalf("registry version = %d, want 1", got)
	}
	vs := r.SinkVersions()
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 0 {
		t.Fatalf("SinkVersions after partial broadcast = %v, want [1 0]", vs)
	}

	// The telemetry source renders the same state as labeled gauges.
	samples := r.AppendSamples(nil)
	want := map[string]float64{}
	for _, s := range samples {
		key := s.Name
		if s.LabelKey != "" {
			key += "{" + s.LabelKey + "=" + s.LabelValue + "}"
		}
		want[key] = s.Value
	}
	for key, v := range map[string]float64{
		"privapprox_control_version":              1,
		"privapprox_control_active_queries":       1,
		"privapprox_control_sink_version{sink=0}": 1,
		"privapprox_control_sink_version{sink=1}": 0,
	} {
		if got, ok := want[key]; !ok || got != v {
			t.Errorf("sample %s = %v (present=%v), want %v", key, got, ok, v)
		}
	}

	var _ telemetry.Source = r
}
