package engine

import (
	"errors"
	"testing"

	"privapprox/internal/query"
)

// recordingSink captures every announced payload.
type recordingSink struct{ payloads [][]byte }

func (s *recordingSink) Announce(p []byte) error {
	s.payloads = append(s.payloads, append([]byte(nil), p...))
	return nil
}

func TestRegistryRegisterVerifiesAndBroadcasts(t *testing.T) {
	pub, priv := testKey(1)
	r := NewRegistry()
	sink := &recordingSink{}
	if err := r.AttachSink(sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.payloads) != 1 {
		t.Fatalf("attach did not send the initial snapshot")
	}

	signed := testSigned(t, "alice", 1, priv)

	// Unknown analyst: no trusted key yet.
	if err := r.Register(signed, testParams()); !errors.Is(err, ErrUnknownAnalyst) {
		t.Fatalf("Register without trust = %v, want ErrUnknownAnalyst", err)
	}
	if err := r.Trust("alice", pub); err != nil {
		t.Fatal(err)
	}

	// A query signed by the wrong key is rejected even for a trusted
	// analyst.
	_, wrongPriv := testKey(2)
	forged := testSigned(t, "alice", 2, wrongPriv)
	if err := r.Register(forged, testParams()); !errors.Is(err, query.ErrBadSignature) {
		t.Fatalf("forged Register = %v, want ErrBadSignature", err)
	}

	if err := r.Register(signed, testParams()); err != nil {
		t.Fatal(err)
	}
	if got := r.Active(); len(got) != 1 || got[0] != signed.Query.QID {
		t.Fatalf("Active = %v", got)
	}
	if len(sink.payloads) != 2 {
		t.Fatalf("broadcasts = %d, want 2", len(sink.payloads))
	}
	qs, err := DecodeQuerySet(sink.payloads[1])
	if err != nil {
		t.Fatal(err)
	}
	if qs.Version != 1 || len(qs.Entries) != 1 || qs.Entries[0].Rev != 0 {
		t.Fatalf("snapshot = v%d with %d entries", qs.Version, len(qs.Entries))
	}

	// Re-registering bumps the revision (parameter redistribution).
	p2 := testParams()
	p2.S = 0.5
	if err := r.Register(signed, p2); err != nil {
		t.Fatal(err)
	}
	qs, err = DecodeQuerySet(sink.payloads[len(sink.payloads)-1])
	if err != nil {
		t.Fatal(err)
	}
	if qs.Entries[0].Rev != 1 || qs.Entries[0].Params.S != 0.5 {
		t.Fatalf("re-register entry = rev %d params %+v", qs.Entries[0].Rev, qs.Entries[0].Params)
	}

	// Stop shrinks the set.
	if err := r.Stop(signed.Query.QID); err != nil {
		t.Fatal(err)
	}
	if got := r.Active(); len(got) != 0 {
		t.Fatalf("Active after stop = %v", got)
	}
	if err := r.Stop(signed.Query.QID); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("double Stop = %v, want ErrUnknownQuery", err)
	}
}

// TestRegistryWireIDCollision exercises the collision guard: two
// distinct analyst:serial pairs whose 64-bit wire IDs coincide must be
// rejected, because the wire ID is the only demux key answer messages
// carry. A genuine FNV-64 collision cannot be constructed in test
// time, so the hash is narrowed through the package seam to force one.
func TestRegistryWireIDCollision(t *testing.T) {
	orig := wireIDOf
	defer func() { wireIDOf = orig }()
	// Truncate the hash to 8 bits: distinct IDs now collide readily —
	// exactly what a 64-bit birthday collision would look like.
	wireIDOf = func(id query.ID) uint64 { return id.Uint64() & 0xff }

	pub, priv := testKey(3)
	r := NewRegistry()
	if err := r.Trust("carol", pub); err != nil {
		t.Fatal(err)
	}

	// Probe serials until two distinct IDs collide under the truncated
	// hash.
	base := testSigned(t, "carol", 1, priv)
	if err := r.Register(base, testParams()); err != nil {
		t.Fatal(err)
	}
	baseWire := wireIDOf(base.Query.QID)
	var collided bool
	for serial := uint64(2); serial < 10_000; serial++ {
		id := query.ID{Analyst: "carol", Serial: serial}
		if wireIDOf(id) != baseWire {
			continue
		}
		err := r.Register(testSigned(t, "carol", serial, priv), testParams())
		if !errors.Is(err, ErrWireCollision) {
			t.Fatalf("colliding Register = %v, want ErrWireCollision", err)
		}
		collided = true
		break
	}
	if !collided {
		t.Fatal("no collision found under truncated hash (test setup broken)")
	}
	// The registry state is untouched by the rejected registration.
	if got := r.Active(); len(got) != 1 || got[0] != base.Query.QID {
		t.Fatalf("Active after rejected collision = %v", got)
	}
}
