package engine

import (
	"errors"
	"testing"

	"privapprox/internal/query"
)

// recordingSink captures every announced payload.
type recordingSink struct{ payloads [][]byte }

func (s *recordingSink) Announce(p []byte) error {
	s.payloads = append(s.payloads, append([]byte(nil), p...))
	return nil
}

func TestRegistryRegisterVerifiesAndBroadcasts(t *testing.T) {
	pub, priv := testKey(1)
	r := NewRegistry()
	sink := &recordingSink{}
	if err := r.AttachSink(sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.payloads) != 1 {
		t.Fatalf("attach did not send the initial snapshot")
	}

	signed := testSigned(t, "alice", 1, priv)

	// Unknown analyst: no trusted key yet.
	if err := r.Register(signed, testParams()); !errors.Is(err, ErrUnknownAnalyst) {
		t.Fatalf("Register without trust = %v, want ErrUnknownAnalyst", err)
	}
	if err := r.Trust("alice", pub); err != nil {
		t.Fatal(err)
	}

	// A query signed by the wrong key is rejected even for a trusted
	// analyst.
	_, wrongPriv := testKey(2)
	forged := testSigned(t, "alice", 2, wrongPriv)
	if err := r.Register(forged, testParams()); !errors.Is(err, query.ErrBadSignature) {
		t.Fatalf("forged Register = %v, want ErrBadSignature", err)
	}

	if err := r.Register(signed, testParams()); err != nil {
		t.Fatal(err)
	}
	if got := r.Active(); len(got) != 1 || got[0] != signed.Query.QID {
		t.Fatalf("Active = %v", got)
	}
	if len(sink.payloads) != 2 {
		t.Fatalf("broadcasts = %d, want 2", len(sink.payloads))
	}
	qs, err := DecodeQuerySet(sink.payloads[1])
	if err != nil {
		t.Fatal(err)
	}
	if qs.Version != 1 || len(qs.Entries) != 1 || qs.Entries[0].Rev != 0 {
		t.Fatalf("snapshot = v%d with %d entries", qs.Version, len(qs.Entries))
	}

	// Re-registering bumps the revision (parameter redistribution).
	p2 := testParams()
	p2.S = 0.5
	if err := r.Register(signed, p2); err != nil {
		t.Fatal(err)
	}
	qs, err = DecodeQuerySet(sink.payloads[len(sink.payloads)-1])
	if err != nil {
		t.Fatal(err)
	}
	if qs.Entries[0].Rev != 1 || qs.Entries[0].Params.S != 0.5 {
		t.Fatalf("re-register entry = rev %d params %+v", qs.Entries[0].Rev, qs.Entries[0].Params)
	}

	// Stop shrinks the set.
	if err := r.Stop(signed.Query.QID); err != nil {
		t.Fatal(err)
	}
	if got := r.Active(); len(got) != 0 {
		t.Fatalf("Active after stop = %v", got)
	}
	if err := r.Stop(signed.Query.QID); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("double Stop = %v, want ErrUnknownQuery", err)
	}
}

// TestRegistryWireIDCollision exercises the collision guard: two
// distinct analyst:serial pairs whose 64-bit wire IDs coincide must be
// rejected, because the wire ID is the only demux key answer messages
// carry. A genuine FNV-64 collision cannot be constructed in test
// time, so the hash is narrowed through the package seam to force one.
func TestRegistryWireIDCollision(t *testing.T) {
	orig := wireIDOf
	defer func() { wireIDOf = orig }()
	// Truncate the hash to 8 bits: distinct IDs now collide readily —
	// exactly what a 64-bit birthday collision would look like.
	wireIDOf = func(id query.ID) uint64 { return id.Uint64() & 0xff }

	pub, priv := testKey(3)
	r := NewRegistry()
	if err := r.Trust("carol", pub); err != nil {
		t.Fatal(err)
	}

	// Probe serials until two distinct IDs collide under the truncated
	// hash.
	base := testSigned(t, "carol", 1, priv)
	if err := r.Register(base, testParams()); err != nil {
		t.Fatal(err)
	}
	baseWire := wireIDOf(base.Query.QID)
	var collided bool
	for serial := uint64(2); serial < 10_000; serial++ {
		id := query.ID{Analyst: "carol", Serial: serial}
		if wireIDOf(id) != baseWire {
			continue
		}
		err := r.Register(testSigned(t, "carol", serial, priv), testParams())
		if !errors.Is(err, ErrWireCollision) {
			t.Fatalf("colliding Register = %v, want ErrWireCollision", err)
		}
		collided = true
		break
	}
	if !collided {
		t.Fatal("no collision found under truncated hash (test setup broken)")
	}
	// The registry state is untouched by the rejected registration.
	if got := r.Active(); len(got) != 1 || got[0] != base.Query.QID {
		t.Fatalf("Active after rejected collision = %v", got)
	}
}

// TestRegistryBootstrapResumesVersioning: a restarted submitter that
// bootstraps from the newest replayed snapshot must continue version
// numbering past it — otherwise its next announcement would carry a
// version the newest-snapshot-wins appliers have already seen and be
// ignored forever.
func TestRegistryBootstrapResumesVersioning(t *testing.T) {
	pub, priv := testKey(1)
	orig := NewRegistry()
	if err := orig.Trust("alice", pub); err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	if err := orig.AttachSink(sink); err != nil {
		t.Fatal(err)
	}
	q1 := testSigned(t, "alice", 1, priv)
	q2 := testSigned(t, "alice", 2, priv)
	if err := orig.Register(q1, testParams()); err != nil {
		t.Fatal(err)
	}
	if err := orig.Register(q2, testParams()); err != nil {
		t.Fatal(err)
	}

	// "Replay": decode the newest snapshot off the control stream, the
	// way a restarted submit process reads it back from a durable proxy.
	newest, err := DecodeQuerySet(sink.payloads[len(sink.payloads)-1])
	if err != nil {
		t.Fatal(err)
	}

	restarted := NewRegistry()
	if err := restarted.Bootstrap(newest); err != nil {
		t.Fatal(err)
	}
	if got := restarted.Version(); got != orig.Version() {
		t.Fatalf("bootstrapped version %d, want %d", got, orig.Version())
	}
	if got := restarted.Active(); len(got) != 2 || got[0] != q1.Query.QID || got[1] != q2.Query.QID {
		t.Fatalf("bootstrapped active set = %v", got)
	}
	// The analyst keys travel in the snapshot: a bootstrapped registry
	// accepts follow-up registrations from the same analyst without an
	// explicit Trust call, and numbers them past the adopted version.
	q3 := testSigned(t, "alice", 3, priv)
	sink2 := &recordingSink{}
	if err := restarted.AttachSink(sink2); err != nil {
		t.Fatal(err)
	}
	if err := restarted.Register(q3, testParams()); err != nil {
		t.Fatal(err)
	}
	qs, err := DecodeQuerySet(sink2.payloads[len(sink2.payloads)-1])
	if err != nil {
		t.Fatal(err)
	}
	if qs.Version <= newest.Version {
		t.Fatalf("post-bootstrap announcement version %d did not move past %d", qs.Version, newest.Version)
	}
	if len(qs.Entries) != 3 {
		t.Fatalf("post-bootstrap snapshot has %d entries, want 3", len(qs.Entries))
	}

	// Entry revisions survive the round trip: a parameter update before
	// the crash keeps its bumped revision after bootstrap, so appliers
	// do not needlessly redraw coin streams.
	p2 := testParams()
	p2.S = 0.5
	if err := orig.Register(q1, p2); err != nil {
		t.Fatal(err)
	}
	newest2, err := DecodeQuerySet(sink.payloads[len(sink.payloads)-1])
	if err != nil {
		t.Fatal(err)
	}
	again := NewRegistry()
	if err := again.Bootstrap(newest2); err != nil {
		t.Fatal(err)
	}
	e, ok := again.Entry(q1.Query.QID)
	if !ok || e.Rev != 1 || e.Params.S != 0.5 {
		t.Fatalf("bootstrapped entry = %+v, %v; want rev 1, S=0.5", e, ok)
	}
}

func TestRegistryBootstrapRejectsBadSnapshots(t *testing.T) {
	pub, priv := testKey(1)
	r := NewRegistry()
	if err := r.Trust("alice", pub); err != nil {
		t.Fatal(err)
	}
	signed := testSigned(t, "alice", 1, priv)
	if err := r.Register(signed, testParams()); err != nil {
		t.Fatal(err)
	}

	// Going backwards is rejected.
	if err := r.Bootstrap(&QuerySet{Version: 0}); err == nil {
		t.Fatal("bootstrap accepted a snapshot behind the registry version")
	}

	// A forged signature is rejected even though the key travels with
	// the entry (the entry must at least be self-consistent).
	_, wrongPriv := testKey(2)
	forged := testSigned(t, "alice", 9, wrongPriv)
	bad := &QuerySet{Version: 10, Entries: []Entry{{Signed: forged, AnalystKey: pub, Params: testParams()}}}
	if err := NewRegistry().Bootstrap(bad); !errors.Is(err, query.ErrBadSignature) {
		t.Fatalf("forged bootstrap entry = %v, want ErrBadSignature", err)
	}

	// Duplicate entries are rejected.
	dup := &QuerySet{Version: 10, Entries: []Entry{
		{Signed: signed, AnalystKey: pub, Params: testParams()},
		{Signed: signed, AnalystKey: pub, Params: testParams()},
	}}
	if err := NewRegistry().Bootstrap(dup); err == nil {
		t.Fatal("bootstrap accepted duplicate entries")
	}
}
