package engine

import (
	"crypto/ed25519"
	"fmt"
	"reflect"
	"testing"

	"privapprox/internal/budget"
	"privapprox/internal/client"
	"privapprox/internal/minisql"
	"privapprox/internal/netsim"
	"privapprox/internal/query"
	"privapprox/internal/xorcrypt"
)

// countingSink counts shares per wire QueryID... it just counts
// submissions; clients split answers into opaque shares, so the test
// counts totals.
type countingSink struct{ n int }

func (s *countingSink) Submit(xorcrypt.Share) error {
	s.n++
	return nil
}

func newTestClient(t *testing.T, i int) *client.Client {
	t.Helper()
	db := minisql.NewDB()
	if err := db.CreateTable("rides", []string{"dist"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("rides", []minisql.Value{minisql.Number(2.5)}); err != nil {
		t.Fatal(err)
	}
	c, err := client.New(client.Config{
		ID:    fmt.Sprintf("client-%03d", i),
		DB:    db,
		Sinks: []client.ShareSink{&countingSink{}, &countingSink{}},
		Seed:  int64(i) + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestQueryDistributionConvergesUnderLossAndReorder drives the control
// plane through an adversarial delivery model: a sequence of query-set
// announcements (registrations, a parameter update, a stop) is
// delivered to every client through an independent lossy, reordering,
// duplicating netsim link. Every client must converge to exactly the
// registry's final active set — in the same order — before answering.
func TestQueryDistributionConvergesUnderLossAndReorder(t *testing.T) {
	pub, priv := testKey(5)
	r := NewRegistry()
	if err := r.Trust("alice", pub); err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	if err := r.AttachSink(sink); err != nil {
		t.Fatal(err)
	}

	// A churny control history: register 4, retune one, stop one.
	var ids []query.ID
	for serial := uint64(1); serial <= 4; serial++ {
		s := testSigned(t, "alice", serial, priv)
		if err := r.Register(s, testParams()); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.Query.QID)
	}
	retuned := testParams()
	retuned.S = 0.33
	if err := r.Register(testSigned(t, "alice", 2, priv), retuned); err != nil {
		t.Fatal(err)
	}
	if err := r.Stop(ids[0]); err != nil {
		t.Fatal(err)
	}
	wantActive := r.Active()
	if len(wantActive) != 3 {
		t.Fatalf("registry active = %v", wantActive)
	}

	const clients = 8
	var wantQueries []query.ID
	for i := 0; i < clients; i++ {
		c := newTestClient(t, i)
		ap := NewApplier(c)
		link := netsim.Link{Drop: 0.4, Dup: 0.3, ReorderWindow: 3, Seed: int64(i) + 100}
		delivered, err := link.Deliver(sink.payloads)
		if err != nil {
			t.Fatal(err)
		}
		for _, payload := range delivered {
			if err := ap.ApplyPayload(payload); err != nil {
				t.Fatalf("client %d: apply: %v", i, err)
			}
		}
		var got []query.ID
		for _, q := range c.ActiveQueries() {
			got = append(got, q.QID)
		}
		if !reflect.DeepEqual(got, wantActive) {
			t.Fatalf("client %d converged to %v, want %v (delivered %d of %d announcements)",
				i, got, wantActive, len(delivered), len(sink.payloads))
		}
		if wantQueries == nil {
			wantQueries = got
		} else if !reflect.DeepEqual(got, wantQueries) {
			t.Fatalf("client %d active set diverges from client 0: %v vs %v", i, got, wantQueries)
		}
		if ap.Version() != r.Version() {
			t.Fatalf("client %d at version %d, registry at %d", i, ap.Version(), r.Version())
		}
		// Converged clients answer every active query.
		if _, err := c.AnswerOnce(0); err != nil {
			t.Fatalf("client %d: answer after convergence: %v", i, err)
		}
	}
}

// TestApplierTrustPinning pins the client-side trust anchor: once an
// analyst key is pinned, snapshots carrying entries signed under a
// different (self-announced) key — the forged-query vector a malicious
// control-topic publisher has — are rejected wholesale.
func TestApplierTrustPinning(t *testing.T) {
	pub, priv := testKey(7)
	evilPub, evilPriv := testKey(8)

	genuine := testSigned(t, "alice", 1, priv)
	forged := testSigned(t, "alice", 2, evilPriv)

	c := newTestClient(t, 0)
	ap := NewApplier(c)
	ap.Trust("alice", pub)

	ok := &QuerySet{Version: 1, Entries: []Entry{
		{Signed: genuine, AnalystKey: pub, Params: testParams()},
	}}
	if err := ap.Apply(ok); err != nil {
		t.Fatalf("pinned genuine snapshot rejected: %v", err)
	}
	// Forged entry announces the attacker's own key; signature verifies
	// against it, but the pin does not match.
	bad := &QuerySet{Version: 2, Entries: []Entry{
		{Signed: genuine, AnalystKey: pub, Params: testParams()},
		{Signed: forged, AnalystKey: evilPub, Params: testParams()},
	}}
	if err := ap.Apply(bad); err == nil {
		t.Fatal("forged-key snapshot accepted under pinning")
	}
	// The rejection is wholesale: the client still runs only the
	// genuine query at the old version.
	if got := c.Subscriptions(); got != 1 {
		t.Fatalf("subscriptions after rejected snapshot = %d, want 1", got)
	}
	if ap.Version() != 1 {
		t.Fatalf("version moved to %d on a rejected snapshot", ap.Version())
	}
	// An unpinned analyst is rejected too.
	unknown := &QuerySet{Version: 3, Entries: []Entry{
		{Signed: testSigned(t, "mallory", 1, evilPriv), AnalystKey: evilPub, Params: testParams()},
	}}
	if err := ap.Apply(unknown); err == nil {
		t.Fatal("unpinned analyst accepted")
	}
}

// TestApplierIgnoresStaleAndDuplicateSnapshots pins the version rule
// that makes convergence work, and the revision rule that keeps
// unchanged subscriptions untouched across snapshot churn.
func TestApplierIgnoresStaleAndDuplicateSnapshots(t *testing.T) {
	pub, priv := testKey(6)
	r := NewRegistry()
	if err := r.Trust("alice", pub); err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	if err := r.AttachSink(sink); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(testSigned(t, "alice", 1, priv), testParams()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(testSigned(t, "alice", 2, priv), testParams()); err != nil {
		t.Fatal(err)
	}

	c := newTestClient(t, 0)
	ap := NewApplier(c)
	latest := sink.payloads[len(sink.payloads)-1]
	if err := ap.ApplyPayload(latest); err != nil {
		t.Fatal(err)
	}
	if got := c.Subscriptions(); got != 2 {
		t.Fatalf("subscriptions = %d, want 2", got)
	}
	// Replaying the whole history afterwards — stale versions — must
	// not churn the subscriptions (a resubscribe would redraw the coin
	// stream; the revision guard makes it observable via generations,
	// so assert versions simply stay put).
	v := ap.Version()
	for _, payload := range sink.payloads {
		if err := ap.ApplyPayload(payload); err != nil {
			t.Fatal(err)
		}
	}
	if ap.Version() != v {
		t.Fatalf("stale replay moved version %d → %d", v, ap.Version())
	}
	if got := c.Subscriptions(); got != 2 {
		t.Fatalf("subscriptions after replay = %d, want 2", got)
	}
}

// shedMock records applier traffic: subscription counts per query and
// the last shed threshold forwarded through the ShedSetter surface.
type shedMock struct {
	subs  map[string]int
	sheds map[string]float64
}

func newShedMock() *shedMock {
	return &shedMock{subs: make(map[string]int), sheds: make(map[string]float64)}
}

func (m *shedMock) SubscribeQuery(signed *query.Signed, _ ed25519.PublicKey, _ budget.Params) error {
	m.subs[signed.Query.QID.String()]++
	return nil
}

func (m *shedMock) UnsubscribeQuery(id query.ID) bool {
	delete(m.subs, id.String())
	return true
}

func (m *shedMock) SetShed(id query.ID, shed float64) bool {
	m.sheds[id.String()] = shed
	return true
}

// bareMock is a Subscriber without the ShedSetter surface — minimal
// clients must keep working when snapshots carry shed thresholds.
type bareMock struct{ subs int }

func (m *bareMock) SubscribeQuery(*query.Signed, ed25519.PublicKey, budget.Params) error {
	m.subs++
	return nil
}
func (m *bareMock) UnsubscribeQuery(query.ID) bool { return true }

// TestShedDistribution checks the overload-control side channel of the
// control plane: Registry.SetShed broadcasts a new snapshot whose entry
// carries the threshold but an unchanged Rev, and the applier forwards
// it through SetShed without re-subscribing — so actuating the SLO
// controller never redraws client coin streams.
func TestShedDistribution(t *testing.T) {
	pub, priv := testKey(11)
	r := NewRegistry()
	if err := r.Trust("alice", pub); err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	if err := r.AttachSink(sink); err != nil {
		t.Fatal(err)
	}
	signed := testSigned(t, "alice", 1, priv)
	id := signed.Query.QID
	if err := r.Register(signed, testParams()); err != nil {
		t.Fatal(err)
	}
	rev0 := func() uint64 {
		e, ok := r.Entry(id)
		if !ok {
			t.Fatal("entry missing")
		}
		return e.Rev
	}()

	if err := r.SetShed(id, 0.4); err != nil {
		t.Fatal(err)
	}
	e, _ := r.Entry(id)
	if e.Rev != rev0 {
		t.Fatalf("SetShed bumped Rev %d → %d", rev0, e.Rev)
	}
	if e.Shed != 0.4 {
		t.Fatalf("entry shed = %v, want 0.4", e.Shed)
	}
	if err := r.SetShed(query.ID{Analyst: "ghost", Serial: 9}, 0.5); err == nil {
		t.Fatal("SetShed on unknown query succeeded")
	}

	mock := newShedMock()
	bare := &bareMock{}
	ap := NewApplier(mock, bare)
	for _, payload := range sink.payloads {
		if err := ap.ApplyPayload(payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := mock.subs[id.String()]; got != 1 {
		t.Fatalf("SubscribeQuery called %d times, want 1 (shed change must not re-subscribe)", got)
	}
	if got := mock.sheds[id.String()]; got != 0.4 {
		t.Fatalf("forwarded shed = %v, want 0.4", got)
	}
	if bare.subs != 1 {
		t.Fatalf("bare subscriber saw %d subscriptions, want 1", bare.subs)
	}

	// Recovery: shed back to 1 flows through the same path.
	if err := r.SetShed(id, 1); err != nil {
		t.Fatal(err)
	}
	for _, payload := range sink.payloads[len(sink.payloads)-1:] {
		if err := ap.ApplyPayload(payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := mock.sheds[id.String()]; got != 1 {
		t.Fatalf("recovered shed = %v, want 1", got)
	}
	if got := mock.subs[id.String()]; got != 1 {
		t.Fatalf("recovery re-subscribed (%d calls)", got)
	}

	// A feedback re-registration (Rev bump) re-subscribes AND re-asserts
	// the standing threshold.
	if err := r.SetShed(id, 0.25); err != nil {
		t.Fatal(err)
	}
	retuned := testParams()
	retuned.S = 0.5
	if err := r.Register(testSigned(t, "alice", 1, priv), retuned); err != nil {
		t.Fatal(err)
	}
	for _, payload := range sink.payloads {
		if err := ap.ApplyPayload(payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := mock.subs[id.String()]; got != 2 {
		t.Fatalf("rev bump: SubscribeQuery called %d times, want 2", got)
	}
	if got := mock.sheds[id.String()]; got != 0.25 {
		t.Fatalf("shed after re-registration = %v, want 0.25", got)
	}
}
