// Package engine is PrivApprox's multi-query control plane: the
// machinery that turns the single-query pipeline into the paper's
// normal operating mode, where many analysts' signed queries run
// concurrently over one shared client fleet (paper §3.1: queries are
// submitted to the aggregator and distributed to clients via the
// proxies).
//
// Three pieces compose:
//
//   - The control codec (this file): versioned query-set announcements
//     — full snapshots of the active query set, each entry carrying the
//     signed query, the analyst's public key, the derived system
//     parameters, and a per-query revision. Snapshots are idempotent
//     and totally ordered by version, so delivery through a lossy,
//     reordering channel converges as soon as the latest snapshot
//     lands.
//   - Registry: the aggregator-side control plane — verifies analyst
//     signatures against a trust store, rejects wire-ID collisions, and
//     broadcasts snapshots to control sinks (the proxies' control
//     topics).
//   - Applier / Follower: the client-side — consume announcements,
//     verify, and reconcile each client's subscription set against the
//     newest snapshot.
package engine

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"privapprox/internal/budget"
	"privapprox/internal/query"
	"privapprox/internal/rr"
)

// ErrControlWire reports a malformed control-plane payload.
var ErrControlWire = errors.New("engine: control wire error")

// opQuerySet tags a full query-set snapshot — the only control opcode
// today; updates and stops are expressed as new snapshots, which is
// what makes the protocol loss- and reorder-tolerant.
const opQuerySet = byte(0x51)

// Codec limits: a snapshot is bounded so a malicious control record
// cannot balloon a client's memory.
const (
	maxEntries   = 4096
	maxStringLen = 1 << 20
	maxBuckets   = 1 << 16
)

// Bucket wire tags.
const (
	bucketRange   = byte(1)
	bucketPattern = byte(2)
)

// Entry is one active query in a snapshot.
type Entry struct {
	// Signed is the analyst's signed query.
	Signed *query.Signed
	// AnalystKey is the analyst's public key; clients verify the
	// signature against it, which detects tampering with a relayed
	// announcement. On its own it does not authenticate the analyst —
	// clients that must rule out forgery under a fresh key pin analyst
	// keys with Applier.Trust.
	AnalystKey ed25519.PublicKey
	// Params is the derived system parameter triple clients answer
	// under.
	Params budget.Params
	// Rev increments each time this query's entry changes (e.g. a
	// feedback-retuned sampling fraction); appliers re-subscribe only
	// when it moves, keeping a client's per-query coin stream stable
	// across unrelated snapshot churn.
	Rev uint64
	// Shed ∈ (0, 1] is the overload-control threshold: clients answer
	// at the effective fraction Params.S·Shed. Shed changes do NOT bump
	// Rev — appliers forward them via SetShed without re-subscribing,
	// so actuating the controller never redraws client coin streams.
	// Zero on the wire normalizes to 1 (no shedding), which keeps old
	// snapshots and zero-valued entries meaning "unshed".
	Shed float64
}

// QuerySet is one versioned snapshot of the active query set.
type QuerySet struct {
	Version uint64
	Entries []Entry
}

// MarshalBinary encodes the snapshot.
func (qs *QuerySet) MarshalBinary() ([]byte, error) {
	buf := []byte{opQuerySet}
	buf = binary.BigEndian.AppendUint64(buf, qs.Version)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(qs.Entries)))
	for i := range qs.Entries {
		var err error
		buf, err = appendEntry(buf, &qs.Entries[i])
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendEntry(buf []byte, e *Entry) ([]byte, error) {
	if e.Signed == nil || e.Signed.Query == nil {
		return nil, fmt.Errorf("%w: entry without query", ErrControlWire)
	}
	q := e.Signed.Query
	if len(q.Buckets) > maxBuckets {
		return nil, fmt.Errorf("%w: %d buckets", ErrControlWire, len(q.Buckets))
	}
	buf = appendString(buf, q.QID.Analyst)
	buf = binary.BigEndian.AppendUint64(buf, q.QID.Serial)
	buf = appendString(buf, q.SQL)
	buf = binary.BigEndian.AppendUint64(buf, uint64(q.Frequency))
	buf = binary.BigEndian.AppendUint64(buf, uint64(q.Window))
	buf = binary.BigEndian.AppendUint64(buf, uint64(q.Slide))
	if q.Inverted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(q.Buckets)))
	for _, b := range q.Buckets {
		var err error
		buf, err = appendBucket(buf, b)
		if err != nil {
			return nil, err
		}
	}
	buf = appendBytes(buf, e.Signed.Signature)
	buf = appendBytes(buf, e.AnalystKey)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(e.Params.S))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(e.Params.RR.P))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(e.Params.RR.Q))
	buf = binary.BigEndian.AppendUint64(buf, e.Rev)
	shed := e.Shed
	if !(shed > 0) || shed > 1 {
		shed = 1
	}
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(shed))
	return buf, nil
}

// appendBucket encodes one bucket with a type tag. Range buckets
// round-trip exactly (IEEE bits, so ±Inf endpoints survive); pattern
// buckets travel as their source pattern and are recompiled on decode.
// Any other bucket implementation cannot be distributed and is
// rejected at encode time.
func appendBucket(buf []byte, b query.Bucket) ([]byte, error) {
	switch bk := b.(type) {
	case query.RangeBucket:
		buf = append(buf, bucketRange)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(bk.Lo))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(bk.Hi))
		return buf, nil
	case *query.PatternBucket:
		buf = append(buf, bucketPattern)
		return appendString(buf, bk.Label()), nil
	default:
		return nil, fmt.Errorf("%w: bucket type %T not encodable", ErrControlWire, b)
	}
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// ctlDec is a bounds-checked sequential reader over a control payload.
type ctlDec struct{ buf []byte }

func (d *ctlDec) u8() (byte, error) {
	if len(d.buf) < 1 {
		return 0, fmt.Errorf("%w: short payload", ErrControlWire)
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *ctlDec) u32() (uint32, error) {
	if len(d.buf) < 4 {
		return 0, fmt.Errorf("%w: short payload", ErrControlWire)
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v, nil
}

func (d *ctlDec) u64() (uint64, error) {
	if len(d.buf) < 8 {
		return 0, fmt.Errorf("%w: short payload", ErrControlWire)
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v, nil
}

func (d *ctlDec) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *ctlDec) bytes() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if n > maxStringLen {
		return nil, fmt.Errorf("%w: %d-byte field", ErrControlWire, n)
	}
	if uint32(len(d.buf)) < n {
		return nil, fmt.Errorf("%w: short payload", ErrControlWire)
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out, nil
}

func (d *ctlDec) str() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

// DecodeQuerySet decodes one control payload. It validates structure
// only; signature verification and query validation belong to the
// applier (a malformed snapshot must not take the control consumer
// down).
func DecodeQuerySet(payload []byte) (*QuerySet, error) {
	d := &ctlDec{buf: payload}
	op, err := d.u8()
	if err != nil {
		return nil, err
	}
	if op != opQuerySet {
		return nil, fmt.Errorf("%w: unknown opcode %#x", ErrControlWire, op)
	}
	version, err := d.u64()
	if err != nil {
		return nil, err
	}
	count, err := d.u32()
	if err != nil {
		return nil, err
	}
	if count > maxEntries {
		return nil, fmt.Errorf("%w: %d entries", ErrControlWire, count)
	}
	qs := &QuerySet{Version: version}
	for i := uint32(0); i < count; i++ {
		e, err := decodeEntry(d)
		if err != nil {
			return nil, err
		}
		qs.Entries = append(qs.Entries, e)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrControlWire, len(d.buf))
	}
	return qs, nil
}

func decodeEntry(d *ctlDec) (Entry, error) {
	var e Entry
	q := &query.Query{}
	var err error
	if q.QID.Analyst, err = d.str(); err != nil {
		return e, err
	}
	if q.QID.Serial, err = d.u64(); err != nil {
		return e, err
	}
	if q.SQL, err = d.str(); err != nil {
		return e, err
	}
	var f, w, s uint64
	if f, err = d.u64(); err != nil {
		return e, err
	}
	if w, err = d.u64(); err != nil {
		return e, err
	}
	if s, err = d.u64(); err != nil {
		return e, err
	}
	q.Frequency, q.Window, q.Slide = time.Duration(f), time.Duration(w), time.Duration(s)
	inv, err := d.u8()
	if err != nil {
		return e, err
	}
	if inv > 1 {
		return e, fmt.Errorf("%w: inversion flag %d", ErrControlWire, inv)
	}
	q.Inverted = inv == 1
	nb, err := d.u32()
	if err != nil {
		return e, err
	}
	if nb > maxBuckets {
		return e, fmt.Errorf("%w: %d buckets", ErrControlWire, nb)
	}
	for i := uint32(0); i < nb; i++ {
		b, err := decodeBucket(d)
		if err != nil {
			return e, err
		}
		q.Buckets = append(q.Buckets, b)
	}
	sig, err := d.bytes()
	if err != nil {
		return e, err
	}
	pub, err := d.bytes()
	if err != nil {
		return e, err
	}
	var ps, pp, pq float64
	if ps, err = d.f64(); err != nil {
		return e, err
	}
	if pp, err = d.f64(); err != nil {
		return e, err
	}
	if pq, err = d.f64(); err != nil {
		return e, err
	}
	if e.Rev, err = d.u64(); err != nil {
		return e, err
	}
	if e.Shed, err = d.f64(); err != nil {
		return e, err
	}
	if !(e.Shed > 0) || e.Shed > 1 {
		e.Shed = 1
	}
	e.Signed = &query.Signed{Query: q, Signature: sig}
	e.AnalystKey = ed25519.PublicKey(pub)
	e.Params = budget.Params{S: ps, RR: rr.Params{P: pp, Q: pq}}
	return e, nil
}

func decodeBucket(d *ctlDec) (query.Bucket, error) {
	tag, err := d.u8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case bucketRange:
		lo, err := d.f64()
		if err != nil {
			return nil, err
		}
		hi, err := d.f64()
		if err != nil {
			return nil, err
		}
		return query.RangeBucket{Lo: lo, Hi: hi}, nil
	case bucketPattern:
		pattern, err := d.str()
		if err != nil {
			return nil, err
		}
		b, err := query.NewPatternBucket(pattern)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrControlWire, err)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("%w: unknown bucket tag %#x", ErrControlWire, tag)
	}
}
