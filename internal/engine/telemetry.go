package engine

import (
	"strconv"

	"privapprox/internal/telemetry"
)

// AppendSamples implements telemetry.Source over the control plane's
// convergence state: the registry's current snapshot version, the
// number of active queries, and per attached sink (in attachment
// order, labeled sink="0", "1", ...) the newest version it
// acknowledged — a sink whose gauge trails privapprox_control_version
// is a proxy silently lagging the control plane.
func (r *Registry) AppendSamples(dst []telemetry.Sample) []telemetry.Sample {
	r.mu.Lock()
	version := r.version
	active := len(r.entries)
	vers := append([]uint64(nil), r.sinkVers...)
	r.mu.Unlock()
	dst = append(dst,
		telemetry.Sample{Name: "privapprox_control_version", Value: float64(version), Kind: telemetry.KindGauge},
		telemetry.Sample{Name: "privapprox_control_active_queries", Value: float64(active), Kind: telemetry.KindGauge},
	)
	for i, v := range vers {
		dst = append(dst, telemetry.Sample{
			Name: "privapprox_control_sink_version", LabelKey: "sink",
			LabelValue: strconv.Itoa(i), Value: float64(v), Kind: telemetry.KindGauge,
		})
	}
	return dst
}

var _ telemetry.Source = (*Registry)(nil)
