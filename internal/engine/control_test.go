package engine

import (
	"bytes"
	"crypto/ed25519"
	"math"
	"reflect"
	"testing"
	"time"

	"privapprox/internal/budget"
	"privapprox/internal/query"
	"privapprox/internal/rr"
)

// testKey derives a deterministic analyst keypair from one seed byte.
func testKey(b byte) (ed25519.PublicKey, ed25519.PrivateKey) {
	seed := bytes.Repeat([]byte{b}, ed25519.SeedSize)
	priv := ed25519.NewKeyFromSeed(seed)
	return priv.Public().(ed25519.PublicKey), priv
}

// testQuery builds a small valid query for one analyst/serial.
func testQuery(t *testing.T, analyst string, serial uint64) *query.Query {
	t.Helper()
	buckets, err := query.UniformRanges(0, 10, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	return &query.Query{
		QID:       query.ID{Analyst: analyst, Serial: serial},
		SQL:       "SELECT dist FROM rides",
		Buckets:   buckets,
		Frequency: time.Second,
		Window:    4 * time.Second,
		Slide:     2 * time.Second,
	}
}

func testSigned(t *testing.T, analyst string, serial uint64, priv ed25519.PrivateKey) *query.Signed {
	t.Helper()
	signed, err := query.Sign(testQuery(t, analyst, serial), priv)
	if err != nil {
		t.Fatal(err)
	}
	return signed
}

func testParams() budget.Params {
	return budget.Params{S: 0.8, RR: rr.Params{P: 0.9, Q: 0.6}}
}

func TestQuerySetRoundTrip(t *testing.T) {
	pub, priv := testKey(1)
	pattern, err := query.NewPatternBucket("^taxi-.*$")
	if err != nil {
		t.Fatal(err)
	}
	q2 := testQuery(t, "bob", 7)
	q2.Buckets = append(q2.Buckets, pattern, query.RangeBucket{Lo: 10, Hi: math.Inf(1)})
	q2.Inverted = true
	signed2, err := query.Sign(q2, priv)
	if err != nil {
		t.Fatal(err)
	}
	qs := &QuerySet{
		Version: 42,
		Entries: []Entry{
			{Signed: testSigned(t, "alice", 1, priv), AnalystKey: pub, Params: testParams(), Rev: 0},
			{Signed: signed2, AnalystKey: pub, Params: budget.Params{S: 0.25, RR: rr.Params{P: 0.5, Q: 0.4}}, Rev: 3},
		},
	}
	payload, err := qs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQuerySet(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != qs.Version || len(got.Entries) != len(qs.Entries) {
		t.Fatalf("decoded %d entries at version %d", len(got.Entries), got.Version)
	}
	for i := range qs.Entries {
		want, have := qs.Entries[i], got.Entries[i]
		if !reflect.DeepEqual(want.Signed.Query.QID, have.Signed.Query.QID) ||
			want.Signed.Query.SQL != have.Signed.Query.SQL ||
			want.Signed.Query.Inverted != have.Signed.Query.Inverted ||
			want.Signed.Query.Frequency != have.Signed.Query.Frequency {
			t.Errorf("entry %d query mismatch: %+v vs %+v", i, want.Signed.Query, have.Signed.Query)
		}
		if !reflect.DeepEqual(want.Signed.Query.Buckets.Labels(), have.Signed.Query.Buckets.Labels()) {
			t.Errorf("entry %d bucket labels mismatch", i)
		}
		if !bytes.Equal(want.Signed.Signature, have.Signed.Signature) {
			t.Errorf("entry %d signature mismatch", i)
		}
		if !bytes.Equal(want.AnalystKey, have.AnalystKey) {
			t.Errorf("entry %d analyst key mismatch", i)
		}
		if want.Params != have.Params || want.Rev != have.Rev {
			t.Errorf("entry %d params/rev mismatch", i)
		}
		// The signature must still verify after the round trip — the
		// signing payload is rebuilt from the decoded fields, so any
		// codec lossiness would surface here.
		if err := have.Signed.Verify(have.AnalystKey); err != nil {
			t.Errorf("entry %d: decoded signature does not verify: %v", i, err)
		}
	}
}

func TestDecodeQuerySetRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"unknown opcode": {0x99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"truncated":      {opQuerySet, 0, 0, 0},
		"entry overflow": append([]byte{opQuerySet, 0, 0, 0, 0, 0, 0, 0, 1}, 0xff, 0xff, 0xff, 0xff),
	}
	for name, payload := range cases {
		if _, err := DecodeQuerySet(payload); err == nil {
			t.Errorf("%s: decode accepted garbage", name)
		}
	}
	// Trailing bytes after a valid snapshot are a framing error.
	qs := &QuerySet{Version: 1}
	payload, err := qs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeQuerySet(append(payload, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// FuzzQuerySetRoundTrip fuzzes the control-plane codec alongside the
// share-pipeline fuzzers: any payload the decoder accepts must
// re-encode and re-decode to the same snapshot, and the decoder must
// never panic on arbitrary bytes.
func FuzzQuerySetRoundTrip(f *testing.F) {
	pub, priv := testKey(9)
	q := &query.Query{
		QID:       query.ID{Analyst: "fuzz", Serial: 3},
		SQL:       "SELECT v FROM t",
		Buckets:   query.Buckets{query.RangeBucket{Lo: 0, Hi: 1}},
		Frequency: time.Second,
		Window:    2 * time.Second,
		Slide:     time.Second,
	}
	signed, err := query.Sign(q, priv)
	if err != nil {
		f.Fatal(err)
	}
	qs := &QuerySet{Version: 7, Entries: []Entry{{
		Signed: signed, AnalystKey: pub,
		Params: budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Rev:    1,
	}}}
	seed, err := qs.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	// Seed the shed-threshold wire field: a mid-shed snapshot and one
	// whose out-of-range shed must normalize to 1 on decode.
	for _, shed := range []float64{0.25, 1, 7.5} {
		qs.Entries[0].Shed = shed
		s, err := qs.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(s)
	}
	f.Add([]byte{opQuerySet})
	f.Fuzz(func(t *testing.T, payload []byte) {
		qs, err := DecodeQuerySet(payload)
		if err != nil {
			return
		}
		re, err := qs.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		back, err := DecodeQuerySet(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Version != qs.Version || len(back.Entries) != len(qs.Entries) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				qs.Version, len(qs.Entries), back.Version, len(back.Entries))
		}
		for i := range qs.Entries {
			a, b := &qs.Entries[i], &back.Entries[i]
			if a.Signed.Query.QID != b.Signed.Query.QID || a.Rev != b.Rev ||
				!bytes.Equal(a.Signed.Signature, b.Signed.Signature) ||
				len(a.Signed.Query.Buckets) != len(b.Signed.Query.Buckets) {
				t.Fatalf("entry %d changed across round trip", i)
			}
			// Decode normalizes Shed into (0, 1], and re-encoding a
			// normalized value must be a fixed point.
			if !(a.Shed > 0) || a.Shed > 1 {
				t.Fatalf("entry %d decoded shed %v outside (0, 1]", i, a.Shed)
			}
			if a.Shed != b.Shed {
				t.Fatalf("entry %d shed changed across round trip: %v vs %v", i, a.Shed, b.Shed)
			}
		}
	})
}
