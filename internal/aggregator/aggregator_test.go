package aggregator

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/xorcrypt"
)

var testOrigin = time.Unix(1_700_000_000, 0)

func testQuery(t *testing.T, nbuckets int) *query.Query {
	t.Helper()
	buckets, err := query.UniformRanges(0, float64(nbuckets), nbuckets, false)
	if err != nil {
		t.Fatal(err)
	}
	// Frequency equals the window: every client answers once per window,
	// so the answer-slot population equals the client population.
	return &query.Query{
		QID:       query.ID{Analyst: "a", Serial: 1},
		SQL:       "SELECT v FROM t",
		Buckets:   buckets,
		Frequency: 4 * time.Second,
		Window:    4 * time.Second,
		Slide:     4 * time.Second,
	}
}

func testConfig(t *testing.T, nbuckets int, params budget.Params, population int) Config {
	t.Helper()
	return Config{
		Query:      testQuery(t, nbuckets),
		Params:     params,
		Population: population,
		Proxies:    2,
		Origin:     testOrigin,
		Seed:       11,
	}
}

// submitMessage splits and submits one answer message end to end.
func submitMessage(t *testing.T, a *Aggregator, sp *xorcrypt.Splitter, qid, epoch uint64, bucket int, nbuckets int) []Result {
	t.Helper()
	var vec *answer.BitVector
	var err error
	if bucket >= 0 {
		vec, err = answer.OneHot(nbuckets, bucket)
	} else {
		vec, err = answer.NewBitVector(nbuckets)
	}
	if err != nil {
		t.Fatal(err)
	}
	msg := answer.Message{QueryID: qid, Epoch: epoch, Answer: vec}
	raw, err := msg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	shares, err := sp.Split(raw)
	if err != nil {
		t.Fatal(err)
	}
	var fired []Result
	for src, sh := range shares {
		res, err := a.SubmitShare(sh, src, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		fired = append(fired, res...)
	}
	return fired
}

func TestNewValidation(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for nil query")
	}
	cfg := testConfig(t, 4, params, 0)
	if _, err := New(cfg); err == nil {
		t.Error("expected error for zero population")
	}
	cfg = testConfig(t, 4, params, 10)
	cfg.Proxies = 1
	if _, err := New(cfg); err == nil {
		t.Error("expected error for one proxy")
	}
	cfg = testConfig(t, 4, budget.Params{}, 10)
	if _, err := New(cfg); err == nil {
		t.Error("expected error for bad params")
	}
	cfg = testConfig(t, 4, params, 10)
	cfg.Confidence = 2
	if _, err := New(cfg); err == nil {
		t.Error("expected error for bad confidence")
	}
}

func TestExactRecoveryWithoutNoise(t *testing.T) {
	// s=1, p=1: the pipeline must recover exact counts with zero margin.
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	const nbuckets = 4
	const population = 30
	cfg := testConfig(t, nbuckets, params, population)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	qid := cfg.Query.QID.Uint64()
	// 30 clients in epoch 0: buckets 0,1,2 get 10 each.
	for i := 0; i < population; i++ {
		fired := submitMessage(t, a, sp, qid, 0, i%3, nbuckets)
		if len(fired) != 0 {
			t.Fatal("window fired early")
		}
	}
	results, err := a.AdvanceTo(testOrigin.Add(10 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("fired %d windows, want 1", len(results))
	}
	res := results[0]
	if res.Responses != population {
		t.Errorf("Responses = %d", res.Responses)
	}
	for i := 0; i < 3; i++ {
		b := res.Buckets[i]
		if math.Abs(b.Estimate.Estimate-10) > 1e-9 {
			t.Errorf("bucket %d estimate = %v, want 10", i, b.Estimate.Estimate)
		}
		if b.Estimate.Margin > 1e-9 {
			t.Errorf("bucket %d margin = %v, want 0 (full sample, no noise)", i, b.Estimate.Margin)
		}
		if b.ObservedYes != 10 {
			t.Errorf("bucket %d observed = %d", i, b.ObservedYes)
		}
	}
	if res.Buckets[3].Estimate.Estimate != 0 {
		t.Errorf("empty bucket estimate = %v", res.Buckets[3].Estimate.Estimate)
	}
	if a.Decoded() != population {
		t.Errorf("Decoded = %d", a.Decoded())
	}
}

func TestRandomizedRecoveryWithinMargin(t *testing.T) {
	// Realistic parameters: the estimate should land near the truth and
	// the interval should usually cover it.
	params := budget.Params{S: 1, RR: rr.Params{P: 0.6, Q: 0.6}}
	const nbuckets = 2
	const population = 4000
	cfg := testConfig(t, nbuckets, params, population)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	rz, err := rr.NewRandomizer(params.RR, rng)
	if err != nil {
		t.Fatal(err)
	}
	qid := cfg.Query.QID.Uint64()
	const trueYes = 2400 // 60% in bucket 0
	for i := 0; i < population; i++ {
		truth0 := i < trueYes
		vec, _ := answer.NewBitVector(nbuckets)
		vec.Set(0, rz.Respond(truth0))
		vec.Set(1, rz.Respond(!truth0))
		msg := answer.Message{QueryID: qid, Epoch: 0, Answer: vec}
		raw, _ := msg.MarshalBinary()
		shares, _ := sp.Split(raw)
		for src, sh := range shares {
			if _, err := a.SubmitShare(sh, src, time.Now()); err != nil {
				t.Fatal(err)
			}
		}
	}
	results, err := a.AdvanceTo(testOrigin.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("fired %d windows", len(results))
	}
	b0 := results[0].Buckets[0]
	loss := math.Abs(b0.Estimate.Estimate-trueYes) / trueYes
	if loss > 0.08 {
		t.Errorf("bucket 0 estimate %v too far from %v (loss %v)", b0.Estimate.Estimate, trueYes, loss)
	}
	if b0.Estimate.Margin <= 0 {
		t.Error("expected a positive margin under randomization")
	}
	if !b0.Estimate.Contains(trueYes) {
		t.Logf("interval [%v,%v] misses truth %v — allowed occasionally", b0.Estimate.Lo(), b0.Estimate.Hi(), trueYes)
	}
}

func TestSamplingScalesToPopulation(t *testing.T) {
	// Half the population answers (s=0.5): estimates scale by U/U'.
	params := budget.Params{S: 0.5, RR: rr.Params{P: 1, Q: 0.5}}
	const nbuckets = 2
	const population = 1000
	cfg := testConfig(t, nbuckets, params, population)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := xorcrypt.NewSplitter(2, nil, nil)
	qid := cfg.Query.QID.Uint64()
	const respondents = 500
	for i := 0; i < respondents; i++ {
		submitMessage(t, a, sp, qid, 0, i%2, nbuckets)
	}
	results, err := a.AdvanceTo(testOrigin.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	b0 := results[0].Buckets[0]
	if math.Abs(b0.Estimate.Estimate-500) > 1e-6 {
		t.Errorf("scaled estimate = %v, want 500", b0.Estimate.Estimate)
	}
	if b0.Estimate.Margin <= 0 {
		t.Error("sampling margin should be positive at s=0.5")
	}
}

func TestMalformedAndForeignMessagesCounted(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	cfg := testConfig(t, 4, params, 10)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := xorcrypt.NewSplitter(2, nil, nil)
	// Garbage payload that joins but does not decode.
	shares, _ := sp.Split([]byte("not a message"))
	for src, sh := range shares {
		if _, err := a.SubmitShare(sh, src, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if a.Malformed() != 1 {
		t.Errorf("Malformed = %d, want 1", a.Malformed())
	}
	// A valid message for a different query is rejected too — and
	// counted under its own demux counter, not lumped into Malformed.
	submitMessage(t, a, sp, 999999, 0, 1, 4)
	if a.Malformed() != 1 {
		t.Errorf("Malformed = %d, want 1", a.Malformed())
	}
	st := a.Stats()
	if st.UnknownQuery != 1 {
		t.Errorf("Stats.UnknownQuery = %d, want 1", st.UnknownQuery)
	}
	// Right query, wrong answer length: the message decodes but cannot
	// belong to the query's bucket layout.
	submitMessage(t, a, sp, cfg.Query.QID.Uint64(), 0, 1, 7)
	st = a.Stats()
	if st.LengthMismatch != 1 {
		t.Errorf("Stats.LengthMismatch = %d, want 1", st.LengthMismatch)
	}
	if got := st.Dropped(); got != 3 {
		t.Errorf("Stats.Dropped() = %d, want 3", got)
	}
	if a.Decoded() != 0 {
		t.Errorf("Decoded = %d, want 0", a.Decoded())
	}
}

func TestDuplicateSharesRejected(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	cfg := testConfig(t, 4, params, 10)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := xorcrypt.NewSplitter(2, nil, nil)
	vec, _ := answer.OneHot(4, 0)
	raw, _ := (&answer.Message{QueryID: cfg.Query.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	shares, _ := sp.Split(raw)
	for src, sh := range shares {
		if _, err := a.SubmitShare(sh, src, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	// Replaying a share of the completed message is rejected silently.
	if _, err := a.SubmitShare(shares[0], 0, time.Now()); err != nil {
		t.Fatal(err)
	}
	if a.Duplicates() != 1 {
		t.Errorf("Duplicates = %d, want 1", a.Duplicates())
	}
}

func TestPendingJoinsSweep(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	cfg := testConfig(t, 4, params, 10)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := xorcrypt.NewSplitter(2, nil, nil)
	vec, _ := answer.OneHot(4, 0)
	raw, _ := (&answer.Message{QueryID: cfg.Query.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	shares, _ := sp.Split(raw)
	// Only one share arrives: a partial join.
	old := time.Now().Add(-time.Hour)
	if _, err := a.SubmitShare(shares[0], 0, old); err != nil {
		t.Fatal(err)
	}
	if a.PendingJoins() != 1 {
		t.Fatalf("PendingJoins = %d", a.PendingJoins())
	}
	if _, err := a.AdvanceTo(time.Now()); err != nil {
		t.Fatal(err)
	}
	if a.PendingJoins() != 0 {
		t.Errorf("stale join not swept: %d", a.PendingJoins())
	}
}

func TestSlidingWindowsOverlap(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	cfg := testConfig(t, 2, params, 100)
	cfg.Query.Window = 4 * time.Second
	cfg.Query.Slide = 2 * time.Second
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := xorcrypt.NewSplitter(2, nil, nil)
	qid := cfg.Query.QID.Uint64()
	// One answer at epoch 1 (event time origin+1s) lands in two windows.
	submitMessage(t, a, sp, qid, 1, 0, 2)
	results, err := a.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("answer appeared in %d windows, want 2", len(results))
	}
	for _, r := range results {
		if r.Responses != 1 {
			t.Errorf("window %v responses = %d", r.Window, r.Responses)
		}
	}
}

func TestInvertedQueryEstimatesNoCount(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	cfg := testConfig(t, 2, params, 10)
	cfg.Query = cfg.Query.Invert()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := xorcrypt.NewSplitter(2, nil, nil)
	qid := cfg.Query.QID.Uint64()
	// 10 clients, 3 with bucket-0 "Yes" → 7 truthful "No".
	for i := 0; i < 10; i++ {
		bucket := -1
		if i < 3 {
			bucket = 0
		}
		submitMessage(t, a, sp, qid, 0, bucket, 2)
	}
	results, err := a.AdvanceTo(testOrigin.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	b0 := results[0].Buckets[0]
	if !results[0].Inverted {
		t.Error("result should be marked inverted")
	}
	if math.Abs(b0.Estimate.Estimate-7) > 1e-9 {
		t.Errorf("inverted estimate = %v, want 7", b0.Estimate.Estimate)
	}
}

func TestEmptyWindowHasInfiniteMargin(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	cfg := testConfig(t, 2, params, 10)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := xorcrypt.NewSplitter(2, nil, nil)
	// A single-answer window cannot estimate variance: its margin is
	// infinite, and RelativeWidth skips it.
	submitMessage(t, a, sp, cfg.Query.QID.Uint64(), 10, 0, 2)
	results, err := a.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("windows = %d", len(results))
	}
	if !math.IsInf(results[0].Buckets[0].Estimate.Margin, 1) {
		t.Errorf("single-answer margin = %v, want +Inf", results[0].Buckets[0].Estimate.Margin)
	}
	empty := Result{Buckets: []BucketEstimate{{}}}
	if !math.IsInf(RelativeWidth(empty), 1) {
		t.Error("RelativeWidth of empty result should be +Inf")
	}
	// With several answers split across buckets the width is finite.
	a2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		submitMessage(t, a2, sp, cfg.Query.QID.Uint64(), 0, i%2, 2)
	}
	results2, err := a2.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if w := RelativeWidth(results2[0]); math.IsInf(w, 1) || w < 0 {
		t.Errorf("RelativeWidth = %v", w)
	}
}
