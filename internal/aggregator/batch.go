package aggregator

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/rr"
	"privapprox/internal/sampling"
	"privapprox/internal/stats"
	"privapprox/internal/stream"
)

// AnswerSource iterates stored randomized answers for historical
// analytics — histstore.Store.Scan adapts to it.
type AnswerSource func(fn func(ts time.Time, payload []byte) error) error

// BatchResult is a historical query result over a time range.
type BatchResult struct {
	Result
	// SecondSampling is the extra aggregator-side sampling fraction
	// applied to fit the batch computation into its budget (§3.3.1).
	SecondSampling float64
	// Scanned counts stored answers examined; Kept counts those that
	// survived the second sampling round.
	Scanned, Kept int
}

// BatchAnalyze replays stored responses through the estimator with an
// additional round of sampling (paper §3.3.1: "we can perform an
// additional round of sampling at the aggregator to ensure that the
// batch analytics computation remains within the query budget").
// secondSampling ∈ (0, 1] is the keep probability; the estimator
// compensates by treating kept answers as an SRS of the stored set.
func BatchAnalyze(cfg Config, src AnswerSource, from, to time.Time, secondSampling float64, rng *rand.Rand) (BatchResult, error) {
	if secondSampling <= 0 || secondSampling > 1 || math.IsNaN(secondSampling) {
		return BatchResult{}, fmt.Errorf("%w: second sampling %v", ErrConfig, secondSampling)
	}
	agg, err := New(cfg)
	if err != nil {
		return BatchResult{}, err
	}
	st := agg.states.Load().single
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	nbuckets := len(cfg.Query.Buckets)
	acc, err := answer.NewAccumulator(nbuckets)
	if err != nil {
		return BatchResult{}, err
	}
	out := BatchResult{SecondSampling: secondSampling}
	epochs := make(map[uint64]struct{})
	err = src(func(ts time.Time, payload []byte) error {
		if ts.Before(from) || !ts.Before(to) {
			return nil
		}
		out.Scanned++
		if rng.Float64() >= secondSampling {
			return nil
		}
		var msg answer.Message
		if err := msg.UnmarshalBinary(payload); err != nil {
			agg.malformed.Add(1)
			return nil
		}
		if msg.QueryID != st.qidWire || msg.Answer.Len() != nbuckets {
			agg.malformed.Add(1)
			return nil
		}
		epochs[msg.Epoch] = struct{}{}
		out.Kept++
		return acc.Add(msg.Answer)
	})
	if err != nil {
		return BatchResult{}, err
	}
	// The answer-slot population over the range: one slot per client per
	// epoch that produced data.
	effPop := cfg.Population * len(epochs)
	if effPop == 0 {
		effPop = cfg.Population
	}
	res, err := agg.estimateWithPopulation(st, stream.Window{Start: from, End: to}, acc, effPop)
	if err != nil {
		return BatchResult{}, err
	}
	// Widen each bucket's interval for the second sampling round: the
	// kept set is an SRS of the scanned set, so its own margin adds on.
	if out.Kept > 0 && out.Kept < out.Scanned {
		for i := range res.Buckets {
			b := &res.Buckets[i]
			kept := int(math.Round(b.Truthful))
			moments, err := sampling.BinomialMoments(kept, out.Kept)
			if err != nil {
				return BatchResult{}, err
			}
			second, err := sampling.EstimateSumFromMoments(moments, out.Scanned, st.confidence)
			if err != nil {
				return BatchResult{}, err
			}
			// Scale the stored-set margin up to the population.
			scale := float64(agg.cfg.Population) / float64(out.Scanned)
			b.Estimate = stats.ConfidenceInterval{
				Estimate:   b.Estimate.Estimate,
				Margin:     b.Estimate.Margin + second.Margin*scale,
				Confidence: b.Estimate.Confidence,
			}
		}
	}
	out.Result = res
	return out, nil
}

// EpochTime converts an epoch number to event time under a config's
// origin and query frequency — the timestamp convention stored answers
// use.
func EpochTime(cfg Config, epoch uint64) time.Time {
	return cfg.Origin.Add(time.Duration(epoch) * cfg.Query.Frequency)
}

// EstimateYesForWindow is a convenience for tests and experiments: it
// applies the paper's Eq. 5 correction (or its inverted form) to raw
// counts without building a full aggregator.
func EstimateYesForWindow(params rr.Params, inverted bool, observedYes, n int) (float64, error) {
	if inverted {
		return rr.EstimateNo(params, observedYes, n)
	}
	return rr.EstimateYes(params, observedYes, n)
}
