package aggregator

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/stream"
	"privapprox/internal/xorcrypt"
)

// encodeShares splits one answer message into its per-source shares.
func encodeShares(t *testing.T, sp *xorcrypt.Splitter, qid, epoch uint64, nbits, bucket int) []xorcrypt.Share {
	t.Helper()
	var vec *answer.BitVector
	var err error
	if bucket >= 0 {
		vec, err = answer.OneHot(nbits, bucket)
	} else {
		vec, err = answer.NewBitVector(nbits)
	}
	if err != nil {
		t.Fatal(err)
	}
	raw, err := (&answer.Message{QueryID: qid, Epoch: epoch, Answer: vec}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	shares, err := sp.Split(raw)
	if err != nil {
		t.Fatal(err)
	}
	return shares
}

func copyShare(sh xorcrypt.Share) xorcrypt.Share {
	return xorcrypt.Share{MID: sh.MID, Payload: append([]byte(nil), sh.Payload...)}
}

// TestSubmitShareBatchMatchesPerShare pins the batch path's
// equivalence contract: a share stream carrying two interleaved
// queries (one with a non-byte-aligned answer width), multiple epochs,
// a late straggler, unknown-query and wrong-length messages, duplicate
// shares, and a malformed (mismatched-size) group must produce the
// same fired results and the same stats whether submitted one share at
// a time or as whole per-source batches.
func TestSubmitShareBatchMatchesPerShare(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	const nb1, nb2 = 11, 5
	const population = 500
	newAgg := func() *Aggregator {
		cfg := testConfig(t, nb1, params, population)
		cfg.Shards = 4
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		q2 := testQuery(t, nb2)
		q2.QID = query.ID{Analyst: "b", Serial: 2}
		if err := a.AddQuery(QuerySpec{Query: q2, Params: params, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	aggV1 := newAgg()
	aggV2 := newAgg()
	qid1 := testQuery(t, nb1).QID.Uint64()
	q2 := testQuery(t, nb2)
	q2.QID = query.ID{Analyst: "b", Serial: 2}
	qid2 := q2.QID.Uint64()

	sp, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))

	// One shared share stream; payloads are read-only in both paths, but
	// each aggregator gets its own deep copies to honor the ownership
	// contract.
	var all [][]xorcrypt.Share
	for epoch := uint64(0); epoch < 4; epoch++ {
		for i := 0; i < 40; i++ {
			switch i % 8 {
			case 3: // second query, interleaved: forces segment breaks
				all = append(all, encodeShares(t, sp, qid2, epoch, nb2, rng.Intn(nb2)))
			case 5: // unknown query
				all = append(all, encodeShares(t, sp, 0xdeadbeef, epoch, nb1, rng.Intn(nb1)))
			case 7: // wrong answer length for query 1
				all = append(all, encodeShares(t, sp, qid1, epoch, nb1+2, 0))
			default:
				all = append(all, encodeShares(t, sp, qid1, epoch, nb1, rng.Intn(nb1)))
			}
		}
	}
	// Late straggler: epoch 0 again after epoch 3 advanced the watermark.
	all = append(all, encodeShares(t, sp, qid1, 0, nb1, 1))
	// Malformed group: same MID from both sources with mismatched sizes.
	var badMID xorcrypt.MID
	badMID[0] = 0xaa
	all = append(all, []xorcrypt.Share{
		{MID: badMID, Payload: []byte{1, 2, 3}},
		{MID: badMID, Payload: []byte{4, 5}},
	})
	// Duplicate: replay the first message's shares verbatim.
	all = append(all, []xorcrypt.Share{copyShare(all[0][0]), copyShare(all[0][1])})

	arrival := testOrigin

	// Per-share submission, source 0 then source 1 per message.
	var resV1 []Result
	for _, shares := range all {
		for src, sh := range shares {
			res, err := aggV1.SubmitShare(copyShare(sh), src, arrival)
			if err != nil {
				t.Fatal(err)
			}
			resV1 = append(resV1, res...)
		}
	}

	// Batch submission in chunks: all source-0 shares of a chunk, then
	// all source-1 shares — joins complete in the same message order.
	var resV2 []Result
	for lo := 0; lo < len(all); lo += 17 {
		hi := lo + 17
		if hi > len(all) {
			hi = len(all)
		}
		for src := 0; src < 2; src++ {
			var batch []xorcrypt.Share
			for _, shares := range all[lo:hi] {
				batch = append(batch, copyShare(shares[src]))
			}
			res, err := aggV2.SubmitShareBatch(batch, src, arrival)
			if err != nil {
				t.Fatal(err)
			}
			resV2 = append(resV2, res...)
		}
	}

	if !reflect.DeepEqual(resV1, resV2) {
		t.Fatalf("fired results diverge:\nper-share: %+v\nbatch:     %+v", resV1, resV2)
	}
	flushV1, err := aggV1.Flush()
	if err != nil {
		t.Fatal(err)
	}
	flushV2, err := aggV2.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flushV1, flushV2) {
		t.Fatalf("flushed results diverge:\nper-share: %+v\nbatch:     %+v", flushV1, flushV2)
	}
	if s1, s2 := aggV1.Stats(), aggV2.Stats(); s1 != s2 {
		t.Fatalf("stats diverge: per-share %+v, batch %+v", s1, s2)
	}
	if len(resV1) == 0 && len(flushV1) == 0 {
		t.Fatal("test produced no results at all")
	}
	st := aggV1.Stats()
	if st.Late == 0 || st.Duplicates == 0 || st.Malformed == 0 || st.UnknownQuery == 0 || st.LengthMismatch == 0 {
		t.Fatalf("fixture failed to exercise every drop path: %+v", st)
	}
}

// TestSubmitShareBatchEdges: empty batches are no-ops, a bad source is
// rejected with the joiner's arity error, and a single-share batch
// behaves like one SubmitShare.
func TestSubmitShareBatchEdges(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	cfg := testConfig(t, 4, params, 10)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := a.SubmitShareBatch(nil, 0, time.Now()); err != nil || res != nil {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	sh := xorcrypt.Share{Payload: []byte{1}}
	if _, err := a.SubmitShareBatch([]xorcrypt.Share{sh}, 2, time.Now()); !errors.Is(err, stream.ErrJoinArity) {
		t.Fatalf("bad source: err=%v", err)
	}
	if _, err := a.SubmitShareBatch([]xorcrypt.Share{sh}, -1, time.Now()); !errors.Is(err, stream.ErrJoinArity) {
		t.Fatalf("negative source: err=%v", err)
	}
	sp, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	shares := encodeShares(t, sp, cfg.Query.QID.Uint64(), 0, 4, 2)
	for src, s := range shares {
		if _, err := a.SubmitShareBatch([]xorcrypt.Share{s}, src, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Decoded(); got != 1 {
		t.Fatalf("Decoded = %d after single-share batches", got)
	}
}

// TestSweepJoins pins that the public sweep reclaims stale partial
// groups without advancing any watermark or firing any window.
func TestSweepJoins(t *testing.T) {
	params := budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
	cfg := testConfig(t, 4, params, 10)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	arrival := testOrigin
	// Submit only source-0 shares: every group stays pending.
	var batch []xorcrypt.Share
	for i := 0; i < 5; i++ {
		batch = append(batch, encodeShares(t, sp, cfg.Query.QID.Uint64(), 0, 4, i%4)[0])
	}
	if _, err := a.SubmitShareBatch(batch, 0, arrival); err != nil {
		t.Fatal(err)
	}
	if got := a.PendingJoins(); got != 5 {
		t.Fatalf("PendingJoins = %d", got)
	}
	if dropped := a.SweepJoins(arrival.Add(time.Hour)); dropped != 5 {
		t.Fatalf("SweepJoins dropped %d", dropped)
	}
	if got := a.PendingJoins(); got != 0 {
		t.Fatalf("PendingJoins = %d after sweep", got)
	}
	if got := a.OpenWindows(); got != 0 {
		t.Fatalf("SweepJoins opened/fired windows: %d open", got)
	}
}
