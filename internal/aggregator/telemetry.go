package aggregator

import (
	"privapprox/internal/telemetry"
	"privapprox/internal/telemetry/lineage"
)

// SetTracer attaches an epoch tracer: SubmitShareBatch charges its
// join/decrypt/decode time to the join stage, and every fired window
// emits a FireSpan keyed by (epoch, query, window). Nil detaches. The
// hot path pays one atomic pointer load when no tracer is set.
func (a *Aggregator) SetTracer(tr *telemetry.Tracer) {
	a.tracer.Store(tr)
}

// SetCardSink attaches the provenance recorder: every subsequently
// fired window emits one result card (realized participation, CI
// width, budget burn, late counts — see lineage.Card). Nil detaches.
// Like the tracer, an unset sink costs one atomic load at fire time
// and nothing on the share hot path.
func (a *Aggregator) SetCardSink(rec *lineage.Recorder) {
	a.cards.Store(rec)
}

// AppendSamples implements telemetry.Source: the Stats() counters, the
// shard-tail depth gauges, and per-query series labeled query="..."
// (decoded and late counts, the live shed threshold, and the event-time
// watermark). Stats() remains the compat snapshot over the same
// numbers.
func (a *Aggregator) AppendSamples(dst []telemetry.Sample) []telemetry.Sample {
	s := a.Stats()
	dst = append(dst,
		telemetry.Sample{Name: "privapprox_agg_decoded_total", Value: float64(s.Decoded), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_agg_malformed_total", Value: float64(s.Malformed), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_agg_duplicates_total", Value: float64(s.Duplicates), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_agg_late_total", Value: float64(s.Late), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_agg_unknown_query_total", Value: float64(s.UnknownQuery), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_agg_length_mismatch_total", Value: float64(s.LengthMismatch), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_agg_queries", Value: float64(s.Queries), Kind: telemetry.KindGauge},
		telemetry.Sample{Name: "privapprox_agg_pending_joins", Value: float64(a.PendingJoins()), Kind: telemetry.KindGauge},
		telemetry.Sample{Name: "privapprox_agg_open_windows", Value: float64(a.OpenWindows()), Kind: telemetry.KindGauge},
	)
	for _, st := range a.states.Load().ordered {
		dst = append(dst,
			telemetry.Sample{Name: "privapprox_query_decoded_total", LabelKey: "query", LabelValue: st.qname, Value: float64(st.decoded.Load()), Kind: telemetry.KindCounter},
			telemetry.Sample{Name: "privapprox_query_late_total", LabelKey: "query", LabelValue: st.qname, Value: float64(st.dropped.Load()), Kind: telemetry.KindCounter},
			telemetry.Sample{Name: "privapprox_query_shed_threshold", LabelKey: "query", LabelValue: st.qname, Value: st.loadShed(), Kind: telemetry.KindGauge},
		)
		if wm := st.wmMax.Load(); wm != wmUnseen {
			dst = append(dst, telemetry.Sample{Name: "privapprox_query_watermark_ns", LabelKey: "query", LabelValue: st.qname, Value: float64(wm), Kind: telemetry.KindGauge})
		}
	}
	return dst
}

var _ telemetry.Source = (*Aggregator)(nil)
