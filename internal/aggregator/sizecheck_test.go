package aggregator

import (
	"testing"
	"unsafe"
)

func TestJoinShardCacheLineSize(t *testing.T) {
	if size := unsafe.Sizeof(joinShard{}); size%64 != 0 {
		t.Errorf("joinShard is %d bytes; want a multiple of 64", size)
	}
}
