package aggregator

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/stream"
	"privapprox/internal/telemetry"
	"privapprox/internal/xorcrypt"
)

// This file is the batch-granular form of the submit tail: where
// SubmitShare runs join → decrypt → decode → demux → accumulate once
// per share, SubmitShareBatch consumes a whole polled batch in two
// phases — a record-order join pass that gathers completed groups into
// contiguous per-source lanes, and a vectorized tail that XOR-joins
// each lane region in one pass, decodes the packed slots, and folds
// consecutive same-(query, epoch) slots into their windows with one
// accumulator lock acquisition per segment.
//
// Equivalence contract: for a fixed submission sequence the batch path
// is observably identical to the same shares submitted one at a time —
// same fired results, same counters, same OnDecoded sequence. Phase A
// preserves record order exactly (groups complete on the same share,
// in the same order, as under per-share submission), and Phase B's
// per-segment batching is safe because all slots of a segment share
// one event time: a late verdict at the segment head holds for every
// slot (the watermark only advances on observe, which runs after the
// segment), a window that would refuse the first slot refuses all of
// them, and per-bucket counts are integer sums, so one AddBatch equals
// count sequential Adds. Observing once per segment instead of once
// per slot is also equivalent — re-observing an already-observed event
// time never advances the watermark, so only the first observation of
// the segment could fire, and it runs against the same watermark
// either way.

// batchRun is one uniform-stride region of the Phase A lanes: count
// completed join groups of size-byte payloads, starting at byte offset
// off in every lane. Runs seal on payload-size change so Phase B can
// XOR whole regions without per-message re-slicing.
type batchRun struct {
	off   int
	size  int
	count int
}

// submitScratch is the reusable working set of one SubmitShareBatch
// call: per-source completion lanes, run metadata, the joined-plaintext
// buffer, and the decode scratch the per-share path keeps per shard.
// Pooled so concurrent drain goroutines never share one.
type submitScratch struct {
	lanes [][]byte
	views [][]byte
	runs  []batchRun
	plain []byte
	vec   answer.BitVector
	msg   answer.Message
	wins  []stream.Window
}

var submitScratchPool = sync.Pool{New: func() any { return &submitScratch{} }}

// getScratch pops a pooled scratch shaped for n source lanes.
func getScratch(n int) *submitScratch {
	sc := submitScratchPool.Get().(*submitScratch)
	if cap(sc.lanes) < n {
		sc.lanes = make([][]byte, n)
		sc.views = make([][]byte, n)
	}
	sc.lanes = sc.lanes[:n]
	sc.views = sc.views[:n]
	for i := range sc.lanes {
		sc.lanes[i] = sc.lanes[i][:0]
	}
	sc.runs = sc.runs[:0]
	return sc
}

// putScratch returns a scratch to the pool, dropping payload views but
// keeping lane capacity for the next batch.
func putScratch(sc *submitScratch) {
	for i := range sc.views {
		sc.views[i] = nil
	}
	submitScratchPool.Put(sc)
}

// SubmitShareBatch folds in a whole batch of shares from proxy stream
// source — the batch-granular form of SubmitShare, with identical
// semantics: results fired by the batch are returned in fire order
// (exactly the concatenation of what per-share submission would have
// returned), duplicates and malformed messages are counted, and
// ownership of every share payload transfers to the aggregator. An
// empty batch is a no-op.
//
// The batch is processed in share order, so a caller draining a polled
// partition batch observes the same watermark advancement, late drops,
// and fired windows as submitting share-by-share — poll chunking does
// not affect results.
func (a *Aggregator) SubmitShareBatch(shares []xorcrypt.Share, source int, arrival time.Time) ([]Result, error) {
	tr := a.tracer.Load()
	if tr == nil {
		return a.submitShareBatch(shares, source, arrival)
	}
	// Timing is batch-granular: two clock reads amortized over the
	// whole batch keep the per-share overhead inside the allocgate's
	// 0-alloc and the Fig 8 ≤3% budgets.
	t0 := time.Now()
	out, err := a.submitShareBatch(shares, source, arrival)
	tr.RecordCurrent(telemetry.StageJoin, time.Since(t0), len(shares), 0)
	return out, err
}

func (a *Aggregator) submitShareBatch(shares []xorcrypt.Share, source int, arrival time.Time) ([]Result, error) {
	if len(shares) == 0 {
		return nil, nil
	}
	if source < 0 || source >= a.cfg.Proxies {
		return nil, fmt.Errorf("%w: source %d of %d", stream.ErrJoinArity, source, a.cfg.Proxies)
	}
	sc := getScratch(a.cfg.Proxies)
	defer putScratch(sc)

	// Phase A: record-order join under shard locks, held over across
	// consecutive same-shard shares. Completed groups' payloads are
	// copied into contiguous per-source lanes in completion order and
	// the groups recycled immediately; runs seal on size change.
	var pendErr error
	cur := -1
	for _, sh := range shares {
		shard := a.shardOf(sh.MID)
		if shard != cur {
			if cur >= 0 {
				a.shards[cur].mu.Unlock()
			}
			a.shards[shard].mu.Lock()
			cur = shard
		}
		joined, err := a.shards[shard].joiner.Add(sh.MID, source, sh.Payload, arrival)
		if err != nil {
			if errors.Is(err, stream.ErrDuplicate) {
				a.duplicates.Add(1)
				continue
			}
			pendErr = err
			break
		}
		if joined == nil {
			continue
		}
		// Uniformity check — exactly the per-message join's error
		// conditions (empty or mismatched share lengths → malformed).
		size := len(joined.Payloads[0])
		uniform := size > 0
		for _, p := range joined.Payloads[1:] {
			if len(p) != size {
				uniform = false
				break
			}
		}
		if !uniform {
			a.shards[shard].joiner.Recycle(joined)
			a.malformed.Add(1)
			continue
		}
		if nr := len(sc.runs); nr == 0 || sc.runs[nr-1].size != size {
			sc.runs = append(sc.runs, batchRun{off: len(sc.lanes[0]), size: size})
		}
		for i, p := range joined.Payloads {
			sc.lanes[i] = append(sc.lanes[i], p...)
		}
		sc.runs[len(sc.runs)-1].count++
		a.shards[shard].joiner.Recycle(joined)
	}
	if cur >= 0 {
		a.shards[cur].mu.Unlock()
	}

	// Phase B: per run, one span XOR per lane recovers the packed
	// plaintext batch; slots decode in order and consecutive
	// same-(query, epoch) slots ingest as one segment. No shard lock is
	// held here — the lanes are caller-local.
	var out []Result
	var unknown, badlen int64
	for _, run := range sc.runs {
		span := run.size * run.count
		for i := range sc.lanes {
			sc.views[i] = sc.lanes[i][run.off : run.off+span]
		}
		plain, err := xorcrypt.JoinColumnsInto(sc.plain[:0], sc.views)
		if plain != nil {
			sc.plain = plain
		}
		if err != nil {
			a.malformed.Add(int64(run.count))
			continue
		}
		segStart := -1
		var segState *queryState
		var segEpoch uint64
		for k := 0; k < run.count; k++ {
			slot := plain[k*run.size : (k+1)*run.size]
			var st *queryState
			var epoch uint64
			good := false
			if err := sc.msg.UnmarshalBinaryView(slot, &sc.vec); err != nil {
				a.malformed.Add(1)
			} else if qs := a.stateFor(sc.msg.QueryID); qs == nil {
				unknown++
			} else if sc.msg.Answer.Len() != qs.nbuckets {
				badlen++
			} else {
				st, epoch, good = qs, sc.msg.Epoch, true
			}
			if segStart >= 0 && (!good || st != segState || epoch != segEpoch) {
				out, err = a.ingestSegment(sc, segState, segEpoch, plain, segStart, k, run.size, out)
				if err != nil {
					a.foldDemuxDrops(unknown, badlen)
					return out, err
				}
				segStart = -1
			}
			if good && segStart < 0 {
				segStart, segState, segEpoch = k, st, epoch
			}
		}
		if segStart >= 0 {
			var err error
			out, err = a.ingestSegment(sc, segState, segEpoch, plain, segStart, run.count, run.size, out)
			if err != nil {
				a.foldDemuxDrops(unknown, badlen)
				return out, err
			}
		}
	}
	a.foldDemuxDrops(unknown, badlen)
	return out, pendErr
}

// foldDemuxDrops folds a batch's demux drop counts into a shard's
// lock-guarded counters (attribution to shard 0 is arbitrary — Stats
// only ever reports the sum).
func (a *Aggregator) foldDemuxDrops(unknown, badlen int64) {
	if unknown == 0 && badlen == 0 {
		return
	}
	js := &a.shards[0]
	js.mu.Lock()
	js.unknownQID += unknown
	js.badLength += badlen
	js.mu.Unlock()
}

// ingestSegment assigns slots [start, end) of a packed plaintext run —
// all decoded, all of one query and epoch — to the query's windows with
// one accumulator batch-fold per window, then advances the watermark
// once. Mirrors ingest exactly (see the equivalence contract at the top
// of this file); results fired by the advance are appended to out.
func (a *Aggregator) ingestSegment(sc *submitScratch, st *queryState, epoch uint64, plain []byte, start, end, size int, out []Result) ([]Result, error) {
	count := end - start
	st.decoded.Add(int64(count))
	eventTime := a.cfg.Origin.Add(time.Duration(epoch) * st.q.Frequency)
	if a.cfg.OnDecoded != nil {
		// Per slot, in order: the hook sees the same sequence as the
		// per-share path. Ownership contract: the slot bytes are batch
		// scratch, valid only for the duration of the callback.
		for k := start; k < end; k++ {
			a.cfg.OnDecoded(plain[k*size:(k+1)*size], eventTime)
		}
	}
	if st.isLate(eventTime) {
		st.dropped.Add(int64(count))
		return out, nil
	}

	refused := false
	sc.wins = st.assigner.AppendWindowsFor(sc.wins[:0], eventTime)
	lane := plain[start*size+answer.HeaderLen:]
	for _, w := range sc.wins {
		ow := a.openWindowFor(st, w)
		if ow == nil {
			refused = true
			continue
		}
		// Any stable shard target yields identical merged counts; the
		// whole segment folds into shard 0 under one lock acquisition.
		if err := ow.acc.AddBatch(0, lane, size, st.nbuckets, count); err != nil {
			// ErrClosed: the window fired between lookup and fold — the
			// whole segment is late there, same as the per-share path.
			if errors.Is(err, answer.ErrClosed) {
				refused = true
			}
		}
	}
	if refused {
		st.dropped.Add(int64(count))
	}

	if !st.observe(eventTime) {
		return out, nil
	}
	st.fireMu.Lock()
	res, err := a.fireLocked(st, false)
	st.fireMu.Unlock()
	if err != nil {
		return out, err
	}
	return append(out, res...), nil
}

// SweepJoins drops partial join groups whose first share arrived before
// cutoff and forgets completed keys past the retain horizon, across all
// shards — the bounded-memory half of AdvanceTo without its watermark
// effects, for callers (long-running single-epoch drains, benchmarks)
// that must reclaim join state without closing windows. It returns the
// number of dropped partial groups.
func (a *Aggregator) SweepJoins(cutoff time.Time) int {
	dropped := 0
	for i := range a.shards {
		js := &a.shards[i]
		js.mu.Lock()
		dropped += js.joiner.Sweep(cutoff)
		js.mu.Unlock()
	}
	return dropped
}
