package aggregator

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/stats"
	"privapprox/internal/stream"
	"privapprox/internal/xorcrypt"
)

// ckptParams exercises the estimator: p < 1 makes every window fire run
// the RR-loss simulation, consuming the seeded rng the checkpoint must
// reproduce.
var ckptParams = budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}}

// runScripted drives one aggregator through a deterministic submission
// script: population clients × epochs answers, bucket (client+epoch) %
// nbuckets, collecting every fired result in order. When stopAt is
// non-negative the run halts right after that many (client, epoch)
// submissions and returns without flushing.
func runScripted(t *testing.T, a *Aggregator, sp *xorcrypt.Splitter, qid uint64, nbuckets, population, epochs, stopAt int) []Result {
	t.Helper()
	var fired []Result
	step := 0
	for e := 0; e < epochs; e++ {
		for c := 0; c < population; c++ {
			if stopAt >= 0 && step == stopAt {
				return fired
			}
			fired = append(fired, submitMessage(t, a, sp, qid, uint64(e), (c+e)%nbuckets, nbuckets)...)
			step++
		}
	}
	return fired
}

func flushInto(t *testing.T, a *Aggregator, fired []Result) []Result {
	t.Helper()
	res, err := a.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return append(fired, res...)
}

// TestCheckpointRestoreMidStream is the package-level statement of the
// crash gate: kill an aggregator mid-stream, restore a fresh one from
// its checkpoint, feed it the remainder of the stream, and the combined
// result sequence — estimates, margins, counters, everything — is
// identical to an uninterrupted run.
func TestCheckpointRestoreMidStream(t *testing.T) {
	const nbuckets, population, epochs = 4, 12, 4
	cfg := testConfig(t, nbuckets, ckptParams, population)
	qid := cfg.Query.QID.Uint64()

	// Crashed run: stop midway through epoch 2 — after windows have
	// fired (the estimator rng has been consumed) and with epoch 2
	// partially accumulated.
	const stopAt = 2*population + 5
	crashed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spA, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	preResults := runScripted(t, crashed, spA, qid, nbuckets, population, epochs, stopAt)

	// Leave a half-joined message behind: source 0's share arrives
	// before the crash, source 1's only after the restore.
	pendingVec, err := answer.OneHot(nbuckets, 1)
	if err != nil {
		t.Fatal(err)
	}
	pendingMsg := answer.Message{QueryID: qid, Epoch: 2, Answer: pendingVec}
	rawPending, err := pendingMsg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pendingShares, err := spA.Split(rawPending)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crashed.SubmitShare(pendingShares[0], 0, time.Now()); err != nil {
		t.Fatal(err)
	}
	if got := crashed.PendingJoins(); got != 1 {
		t.Fatalf("expected 1 pending join before checkpoint, got %d", got)
	}

	ckpt, err := crashed.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Restored run: a fresh aggregator, same config and query, fed the
	// checkpoint and then the rest of the stream.
	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if got := restored.PendingJoins(); got != 1 {
		t.Fatalf("restored aggregator lost the pending join: %d", got)
	}
	// The straggler share completes the pre-crash message.
	if _, err := restored.SubmitShare(pendingShares[1], 1, time.Now()); err != nil {
		t.Fatal(err)
	}

	postResults := replayRemainder(t, restored, qid, nbuckets, population, epochs, stopAt)
	gotResults := append(append([]Result{}, preResults...), postResults...)
	gotResults = flushInto(t, restored, gotResults)

	// Reference: an uninterrupted aggregator sees the identical stream —
	// the same script with the same extra message at the same position
	// (its share payloads differ, splitter keystreams are independent,
	// but the decoded answers are identical, which is all results depend
	// on).
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spRef, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := runScripted(t, ref, spRef, qid, nbuckets, population, epochs, stopAt)
	refShares, err := spRef.Split(rawPending)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.SubmitShare(refShares[0], 0, time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.SubmitShare(refShares[1], 1, time.Now()); err != nil {
		t.Fatal(err)
	}
	want = append(want, replayRemainder(t, ref, qid, nbuckets, population, epochs, stopAt)...)
	want = flushInto(t, ref, want)
	if len(want) == 0 {
		t.Fatal("reference run fired no windows")
	}

	if !reflect.DeepEqual(gotResults, want) {
		t.Fatalf("restored run diverged from uninterrupted run:\ngot  %+v\nwant %+v", gotResults, want)
	}
	if gotStats, wantStats := restored.Stats(), ref.Stats(); gotStats != wantStats {
		t.Fatalf("stats diverged: got %+v want %+v", gotStats, wantStats)
	}
}

// replayRemainder submits the script's (client, epoch) pairs from
// stopAt onward.
func replayRemainder(t *testing.T, a *Aggregator, qid uint64, nbuckets, population, epochs, stopAt int) []Result {
	t.Helper()
	sp, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var fired []Result
	step := 0
	for e := 0; e < epochs; e++ {
		for c := 0; c < population; c++ {
			if step >= stopAt {
				fired = append(fired, submitMessage(t, a, sp, qid, uint64(e), (c+e)%nbuckets, nbuckets)...)
			}
			step++
		}
	}
	return fired
}

// TestCheckpointRestoresDuplicateSuppression: a share replayed after the
// restart, for a message that completed before the checkpoint, must
// still be rejected — the completed-keys memory survives.
func TestCheckpointRestoresDuplicateSuppression(t *testing.T) {
	const nbuckets = 4
	cfg := testConfig(t, nbuckets, ckptParams, 10)
	qid := cfg.Query.QID.Uint64()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := answer.OneHot(nbuckets, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := (&answer.Message{QueryID: qid, Epoch: 0, Answer: vec}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	shares, err := sp.Split(raw)
	if err != nil {
		t.Fatal(err)
	}
	for src, sh := range shares {
		if _, err := a.SubmitShare(sh, src, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := a.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}

	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	// Replay one of the original shares at the restored aggregator.
	if _, err := b.SubmitShare(shares[0], 0, time.Now()); err != nil {
		t.Fatal(err)
	}
	if got := b.Duplicates(); got != 1 {
		t.Fatalf("replayed share after restore counted %d duplicates, want 1", got)
	}
	if got := b.Decoded(); got != 1 {
		t.Fatalf("decoded count after restore+replay = %d, want 1", got)
	}
}

func TestRestoreRejectsMismatches(t *testing.T) {
	const nbuckets = 4
	cfg := testConfig(t, nbuckets, ckptParams, 10)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := a.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Garbage and truncation fail loudly.
	fresh := func() *Aggregator {
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if err := fresh().Restore([]byte("not a checkpoint")); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("garbage restore: %v", err)
	}
	if err := fresh().Restore(ckpt[:len(ckpt)-3]); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("truncated restore: %v", err)
	}
	if err := fresh().Restore(append(append([]byte{}, ckpt...), 0xFF)); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("trailing-bytes restore: %v", err)
	}

	// A different registered query must be rejected.
	otherCfg := cfg
	otherCfg.Query = testQuery(t, nbuckets)
	otherCfg.Query.QID = query.ID{Analyst: "someone-else", Serial: 9}
	other, err := New(otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(ckpt); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("mismatched query restore: %v", err)
	}

	// A different seed must be rejected: the estimator replay would
	// silently diverge otherwise.
	seedCfg := cfg
	seedCfg.Seed = cfg.Seed + 1
	seeded, err := New(seedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := seeded.Restore(ckpt); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("mismatched seed restore: %v", err)
	}
}

func TestResultsCodecRoundTrip(t *testing.T) {
	res := []Result{
		{
			Query:      query.ID{Analyst: "alice", Serial: 3},
			Window:     stream.Window{Start: testOrigin, End: testOrigin.Add(4 * time.Second)},
			Responses:  17,
			Population: 40,
			Inverted:   true,
			Buckets: []BucketEstimate{
				{Label: "[0,1)", ObservedYes: 9, Truthful: 8.25,
					Estimate: stats.ConfidenceInterval{Estimate: 19.4, Margin: 2.5, Confidence: 0.95}},
				{Label: "rest", ObservedYes: 0, Truthful: 0,
					Estimate: stats.ConfidenceInterval{Confidence: 0.95, Margin: math.Inf(1)}},
			},
		},
		{
			Query:     query.ID{Analyst: "bob", Serial: 1},
			Window:    stream.Window{Start: testOrigin.Add(4 * time.Second), End: testOrigin.Add(8 * time.Second)},
			Responses: 0, Population: 40,
		},
	}
	enc := AppendResults([]byte("prefix"), res)
	got, rest, err := DecodeResults(enc[len("prefix"):])
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d undecoded bytes", len(rest))
	}
	// Times must compare Equal (location may differ after the round
	// trip); normalize before DeepEqual.
	for i := range got {
		if !got[i].Window.Start.Equal(res[i].Window.Start) || !got[i].Window.End.Equal(res[i].Window.End) {
			t.Fatalf("window %d did not round-trip", i)
		}
		got[i].Window = res[i].Window
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("results did not round-trip:\ngot  %+v\nwant %+v", got, res)
	}
	// An empty section round-trips too.
	none, rest, err := DecodeResults(AppendResults(nil, nil))
	if err != nil || len(none) != 0 || len(rest) != 0 {
		t.Fatalf("empty section: %v %v %v", none, rest, err)
	}
}

// TestCheckpointMultiQuery pins the per-query demux of restored state:
// two queries with different seeds and bucket counts, checkpointed
// mid-stream, must each resume their own windows and estimator streams.
func TestCheckpointMultiQuery(t *testing.T) {
	cfg := Config{
		Population: 8,
		Proxies:    2,
		Origin:     testOrigin,
		Seed:       11,
	}
	q1 := testQuery(t, 4)
	q2 := testQuery(t, 6)
	q2.QID = query.ID{Analyst: "b", Serial: 7}

	build := func() *Aggregator {
		a, err := NewMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.AddQuery(QuerySpec{Query: q1, Params: ckptParams}); err != nil {
			t.Fatal(err)
		}
		if err := a.AddQuery(QuerySpec{Query: q2, Params: ckptParams, Seed: 99}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	script := func(a *Aggregator, sp *xorcrypt.Splitter, from, to int) []Result {
		var fired []Result
		step := 0
		for e := 0; e < 4; e++ {
			for c := 0; c < 8; c++ {
				if step >= from && step < to {
					fired = append(fired, submitMessage(t, a, sp, q1.QID.Uint64(), uint64(e), (c+e)%4, 4)...)
					fired = append(fired, submitMessage(t, a, sp, q2.QID.Uint64(), uint64(e), (c+2*e)%6, 6)...)
				}
				step++
			}
		}
		return fired
	}
	newSplitter := func() *xorcrypt.Splitter {
		sp, err := xorcrypt.NewSplitter(2, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}

	ref := build()
	want := flushInto(t, ref, script(ref, newSplitter(), 0, 1<<30))

	const stopAt = 19
	crashed := build()
	pre := script(crashed, newSplitter(), 0, stopAt)
	ckpt, err := crashed.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	restored := build()
	if err := restored.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	got := append(pre, script(restored, newSplitter(), stopAt, 1<<30)...)
	got = flushInto(t, restored, got)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("multi-query restore diverged:\ngot  %+v\nwant %+v", got, want)
	}
	if rs, ws := restored.Stats(), ref.Stats(); rs != ws {
		t.Fatalf("multi-query stats diverged: got %+v want %+v", rs, ws)
	}
}
