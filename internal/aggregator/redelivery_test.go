package aggregator

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"privapprox/internal/budget"
	"privapprox/internal/rr"
)

// These tests pin the aggregator's at-least-once delivery contract: the
// transport below it (retrying producers, chaos-injected redelivery,
// multi-conn pools) may duplicate and reorder shares arbitrarily, and
// the MID join + dedup layer must absorb all of it — results identical
// to a clean run, every redelivered share counted in Duplicates, and
// never a double-accumulated answer.

// replayMessages appends verbatim redeliveries of the first n share
// PAIRS of a clean (good-only) epoch stream — both proxies' shares, not
// just one — `times` times each. buildEpochTraffic lays pairs out
// adjacently, so message i is subs[2i], subs[2i+1].
func replayMessages(subs []submission, n, times int) []submission {
	out := append([]submission(nil), subs...)
	for r := 0; r < times; r++ {
		for i := 0; i < n; i++ {
			out = append(out, subs[2*i], subs[2*i+1])
		}
	}
	return out
}

// submitOrdered drives a stream through the aggregator in the exact
// order given — no shuffling — so a test can pin a specific adversarial
// ordering (e.g. every proxy-1 share before any proxy-0 share).
func submitOrdered(t *testing.T, a *Aggregator, epochs [][]submission) []Result {
	t.Helper()
	var fired []Result
	for _, subs := range epochs {
		for _, sub := range subs {
			res, err := a.SubmitShare(sub.share, sub.src, time.Now())
			if err != nil {
				t.Fatal(err)
			}
			fired = append(fired, res...)
		}
	}
	final, err := a.Flush()
	if err != nil {
		t.Fatal(err)
	}
	fired = append(fired, final...)
	sort.SliceStable(fired, func(i, j int) bool {
		return fired[i].Window.Start.Before(fired[j].Window.Start)
	})
	return fired
}

// TestRedeliveredSharesNeverDoubleAccumulate: the same clean traffic,
// plus full share-pair redeliveries (some messages redelivered twice),
// shuffled into arbitrary interleavings across a workers × shards grid,
// must yield byte-identical results to the duplicate-free sequential
// run — with every redelivered share surfaced in Duplicates and nothing
// dropped.
func TestRedeliveredSharesNeverDoubleAccumulate(t *testing.T) {
	const (
		nbuckets = 5
		nepochs  = 4
		good     = 32
		replayed = 6 // messages whose full pair is redelivered once...
		twice    = 2 // ...of which this many are redelivered a second time
	)
	// Each redelivered pair contributes 2 duplicate shares per round.
	const dupPerEpoch = 2 * (replayed + twice)

	q := slidingTestQuery(t, nbuckets)
	clean := make([][]submission, nepochs)
	dirty := make([][]submission, nepochs)
	for e := range clean {
		clean[e] = buildEpochTraffic(t, q, uint64(e), good, 0, 0)
		dirty[e] = replayMessages(clean[e], replayed, 1)
		dirty[e] = append(dirty[e], replayMessages(clean[e], twice, 1)[len(clean[e]):]...)
	}
	cfg := Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: good,
		Proxies:    2,
		Origin:     testOrigin,
		Seed:       29,
	}

	cfg.Shards = 1
	base, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := runTraffic(t, base, clean, 1, rand.New(rand.NewSource(1)))

	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 8} {
			cfg.Shards = shards
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := runTraffic(t, a, dirty, workers, rand.New(rand.NewSource(int64(100*shards+workers))))
			if a.Decoded() != int64(nepochs*good) {
				t.Errorf("shards=%d workers=%d: decoded = %d, want %d", shards, workers, a.Decoded(), nepochs*good)
			}
			if a.Duplicates() != int64(nepochs*dupPerEpoch) {
				t.Errorf("shards=%d workers=%d: duplicates = %d, want %d", shards, workers, a.Duplicates(), nepochs*dupPerEpoch)
			}
			if a.Dropped() != 0 || a.Malformed() != 0 {
				t.Errorf("shards=%d workers=%d: dropped = %d, malformed = %d, want 0", shards, workers, a.Dropped(), a.Malformed())
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d workers=%d: redelivered run diverges from clean run\n got: %+v\nwant: %+v", shards, workers, got, want)
			}
		}
	}
}

// TestCrossProxyReorderWithReplays pins the worst-case ordering a
// multi-proxy fleet can produce: every proxy-1 share of an epoch lands
// before any proxy-0 share (every join held pending across the whole
// epoch), with redelivered shares arriving both before and after their
// partner completes the join.
func TestCrossProxyReorderWithReplays(t *testing.T) {
	const (
		nbuckets = 4
		nepochs  = 4
		good     = 24
		replayed = 5
	)
	q := slidingTestQuery(t, nbuckets)
	clean := make([][]submission, nepochs)
	reversed := make([][]submission, nepochs)
	for e := range clean {
		clean[e] = buildEpochTraffic(t, q, uint64(e), good, 0, 0)
		var bySrc [2][]submission
		for _, sub := range clean[e] {
			bySrc[sub.src] = append(bySrc[sub.src], sub)
		}
		// Proxy-1 shares first — including pre-join redeliveries, which
		// hit the dedup layer while the join is still pending — then
		// proxy-0 shares with post-join redeliveries.
		ordered := append([]submission(nil), bySrc[1]...)
		ordered = append(ordered, bySrc[1][:replayed]...)
		ordered = append(ordered, bySrc[0]...)
		ordered = append(ordered, bySrc[0][:replayed]...)
		reversed[e] = ordered
	}
	cfg := Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: good,
		Proxies:    2,
		Origin:     testOrigin,
		Seed:       31,
		Shards:     4,
	}

	base, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := submitOrdered(t, base, clean)

	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := submitOrdered(t, a, reversed)
	if a.Decoded() != int64(nepochs*good) {
		t.Errorf("decoded = %d, want %d", a.Decoded(), nepochs*good)
	}
	if a.Duplicates() != int64(nepochs*2*replayed) {
		t.Errorf("duplicates = %d, want %d", a.Duplicates(), nepochs*2*replayed)
	}
	if a.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", a.Dropped())
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reversed-proxy run diverges from in-order run\n got: %+v\nwant: %+v", got, want)
	}
}

// TestRedeliveryAcrossCheckpointRestore: an aggregator is checkpointed
// mid-epoch and a fresh one restored from the snapshot; redeliveries of
// messages accepted BEFORE the checkpoint arrive only AFTER the
// restore. The dedup state must travel in the checkpoint: the combined
// run matches an uninterrupted aggregator fed the identical stream, and
// every cross-checkpoint redelivery counts as a duplicate.
func TestRedeliveryAcrossCheckpointRestore(t *testing.T) {
	const (
		nbuckets = 4
		nepochs  = 3
		good     = 20
		replayed = 6
	)
	q := slidingTestQuery(t, nbuckets)
	rng := rand.New(rand.NewSource(41))
	// Per epoch: shuffled good pairs, then full-pair redeliveries of the
	// first `replayed` messages. The checkpoint cut lands between the
	// good pairs and the redeliveries of epoch 1, so those redeliveries
	// replay pre-checkpoint messages at the restored aggregator.
	var stream []submission
	cut := -1
	for e := 0; e < nepochs; e++ {
		subs := buildEpochTraffic(t, q, uint64(e), good, 0, 0)
		for _, idx := range rng.Perm(len(subs)) {
			stream = append(stream, subs[idx])
		}
		if e == 1 {
			cut = len(stream)
		}
		stream = append(stream, replayMessages(subs, replayed, 1)[len(subs):]...)
	}
	cfg := Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: good,
		Proxies:    2,
		Origin:     testOrigin,
		Seed:       37,
		Shards:     4,
	}

	feed := func(t *testing.T, a *Aggregator, subs []submission) []Result {
		t.Helper()
		var fired []Result
		for _, sub := range subs {
			res, err := a.SubmitShare(sub.share, sub.src, time.Now())
			if err != nil {
				t.Fatal(err)
			}
			fired = append(fired, res...)
		}
		return fired
	}

	uni, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := feed(t, uni, stream)
	want = flushInto(t, uni, want)

	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := feed(t, a, stream[:cut])
	ckpt, err := a.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	got = append(got, feed(t, b, stream[cut:])...)
	got = flushInto(t, b, got)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("interrupted run diverges from uninterrupted run\n got: %+v\nwant: %+v", got, want)
	}
	// Counters travel in the checkpoint, so the restored aggregator's
	// totals cover the whole stream.
	if b.Decoded() != uni.Decoded() || b.Decoded() != int64(nepochs*good) {
		t.Errorf("decoded = %d (uninterrupted %d), want %d", b.Decoded(), uni.Decoded(), nepochs*good)
	}
	if b.Duplicates() != uni.Duplicates() || b.Duplicates() != int64(nepochs*2*replayed) {
		t.Errorf("duplicates = %d (uninterrupted %d), want %d", b.Duplicates(), uni.Duplicates(), nepochs*2*replayed)
	}
	if b.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", b.Dropped())
	}
}
