package aggregator

// Checkpoint/Restore serialize an aggregator's complete dynamic state —
// per-query windows, watermarks, counters, current parameters, the
// estimator replay log, and the share joiner's pending groups — into one
// opaque record a durable deployment writes to its WAL after every
// drain. A restarted aggregator with the same queries registered
// restores the record and continues exactly where the killed process
// stopped: no window fires twice, no answer is double-counted, and the
// estimator's seeded rng resumes at the precise position an
// uninterrupted run would have it at (the rng state itself cannot be
// serialized, so the replay log re-derives it — see estEvent).
//
// The caller owns the consistency cut: Checkpoint must not run
// concurrently with SubmitShare/AdvanceTo, and the record must be
// persisted together with the input offsets of everything submitted
// before it (the privapprox-node aggregator role and core.System both
// checkpoint between poll sweeps).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/stats"
	"privapprox/internal/stream"
	"privapprox/internal/xorcrypt"
)

// ErrCheckpoint reports a malformed or mismatched checkpoint record.
var ErrCheckpoint = errors.New("aggregator: bad checkpoint")

// checkpointMagic versions the record layout. PAC2 added the per-query
// firedThrough watermark (provenance-card exactly-once across restore);
// PAC1 records restore with no fire horizon — their re-fired windows'
// cards are suppressed by the Recorder's log scan instead.
var (
	checkpointMagic   = []byte("PAC2")
	checkpointMagicV1 = []byte("PAC1")
)

const (
	estKindCall  = byte(0)
	estKindClear = byte(1)
)

// Checkpoint appends the aggregator's serialized state to dst and
// returns the extended buffer. See the file comment for the
// concurrency contract.
func (a *Aggregator) Checkpoint(dst []byte) ([]byte, error) {
	a.stateMu.Lock()
	defer a.stateMu.Unlock()
	tbl := a.states.Load()

	buf := append(dst, checkpointMagic...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.malformed.Load()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.duplicates.Load()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.removedDecoded.Load()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.removedLate.Load()))

	var unknown, badLen int64
	type pendGroup struct {
		mid      xorcrypt.MID
		payloads [][]byte
		first    time.Time
	}
	type doneKey struct {
		mid xorcrypt.MID
		at  time.Time
	}
	var pending []pendGroup
	var completed []doneKey
	for i := range a.shards {
		js := &a.shards[i]
		js.mu.Lock()
		unknown += js.unknownQID
		badLen += js.badLength
		js.joiner.PendingGroups(func(mid xorcrypt.MID, payloads [][]byte, first time.Time) {
			cp := make([][]byte, len(payloads))
			for s, p := range payloads {
				if p != nil {
					cp[s] = append([]byte(nil), p...)
				}
			}
			pending = append(pending, pendGroup{mid: mid, payloads: cp, first: first})
		})
		js.joiner.CompletedKeys(func(mid xorcrypt.MID, at time.Time) {
			completed = append(completed, doneKey{mid: mid, at: at})
		})
		js.mu.Unlock()
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(unknown))
	buf = binary.BigEndian.AppendUint64(buf, uint64(badLen))

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(tbl.ordered)))
	for _, st := range tbl.ordered {
		var err error
		buf, err = appendQueryState(buf, st)
		if err != nil {
			return nil, err
		}
	}

	// Sort the join state by message ID so the encoding is deterministic
	// (map iteration above is not).
	sort.Slice(pending, func(i, j int) bool {
		return bytes.Compare(pending[i].mid[:], pending[j].mid[:]) < 0
	})
	sort.Slice(completed, func(i, j int) bool {
		return bytes.Compare(completed[i].mid[:], completed[j].mid[:]) < 0
	})
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(pending)))
	for _, g := range pending {
		buf = append(buf, g.mid[:]...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(g.first.UnixNano()))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(g.payloads)))
		for _, p := range g.payloads {
			if p == nil {
				buf = append(buf, 0)
				continue
			}
			buf = append(buf, 1)
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(p)))
			buf = append(buf, p...)
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(completed)))
	for _, d := range completed {
		buf = append(buf, d.mid[:]...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(d.at.UnixNano()))
	}
	return buf, nil
}

func appendQueryState(buf []byte, st *queryState) ([]byte, error) {
	buf = appendCpString(buf, st.q.QID.Analyst)
	buf = binary.BigEndian.AppendUint64(buf, st.q.QID.Serial)
	buf = binary.BigEndian.AppendUint64(buf, st.qidWire)
	buf = binary.BigEndian.AppendUint64(buf, uint64(st.seed))
	p := st.params.Load()
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p.S))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p.RR.P))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p.RR.Q))
	buf = binary.BigEndian.AppendUint64(buf, uint64(st.wmMax.Load()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(st.decoded.Load()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(st.dropped.Load()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(st.firedThrough.Load()))

	// Open windows, earliest first for a deterministic encoding. The
	// caller holds no shard lock here and firing is frozen by the
	// checkpoint contract, so Merge sees a settled accumulator.
	st.fireMu.Lock()
	defer st.fireMu.Unlock()
	st.winMu.RLock()
	wins := make([]*openWindow, 0, len(st.windows))
	for _, ow := range st.windows {
		wins = append(wins, ow)
	}
	st.winMu.RUnlock()
	sort.Slice(wins, func(i, j int) bool { return wins[i].window.Start.Before(wins[j].window.Start) })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(wins)))
	for _, ow := range wins {
		acc, err := ow.acc.Merge()
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(ow.window.Start.UnixNano()))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ow.window.End.UnixNano()))
		buf = binary.BigEndian.AppendUint64(buf, uint64(acc.N()))
		yes := acc.YesCounts()
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(yes)))
		for _, y := range yes {
			buf = binary.BigEndian.AppendUint64(buf, uint64(y))
		}
	}

	st.estMu.Lock()
	defer st.estMu.Unlock()
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.estLog)))
	for _, ev := range st.estLog {
		if ev.clear {
			buf = append(buf, estKindClear)
			continue
		}
		buf = append(buf, estKindCall)
		buf = binary.BigEndian.AppendUint32(buf, uint32(ev.pct))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(ev.params.P))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(ev.params.Q))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(ev.frac))
		buf = binary.BigEndian.AppendUint32(buf, uint32(ev.simN))
		buf = binary.BigEndian.AppendUint32(buf, uint32(ev.rounds))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(ev.loss))
	}
	return buf, nil
}

// Restore rebuilds the aggregator's dynamic state from a Checkpoint
// record. It must be called on a freshly constructed aggregator — same
// Proxies/Population/Origin configuration, same queries registered in
// the same order with the same seeds — before any share is submitted.
// A mismatch between the record and the registered queries fails
// loudly; nothing is partially applied before the query table has been
// verified.
func (a *Aggregator) Restore(data []byte) error {
	d := &cpDec{buf: data}
	magic, err := d.take(len(checkpointMagic))
	if err != nil {
		return fmt.Errorf("%w: bad magic", ErrCheckpoint)
	}
	v2 := bytes.Equal(magic, checkpointMagic)
	if !v2 && !bytes.Equal(magic, checkpointMagicV1) {
		return fmt.Errorf("%w: bad magic", ErrCheckpoint)
	}
	malformed, err := d.u64()
	if err != nil {
		return err
	}
	duplicates, err := d.u64()
	if err != nil {
		return err
	}
	removedDecoded, err := d.u64()
	if err != nil {
		return err
	}
	removedLate, err := d.u64()
	if err != nil {
		return err
	}
	unknown, err := d.u64()
	if err != nil {
		return err
	}
	badLen, err := d.u64()
	if err != nil {
		return err
	}

	a.stateMu.Lock()
	defer a.stateMu.Unlock()
	tbl := a.states.Load()
	nq, err := d.u32()
	if err != nil {
		return err
	}
	if int(nq) != len(tbl.ordered) {
		return fmt.Errorf("%w: %d checkpointed queries, %d registered", ErrCheckpoint, nq, len(tbl.ordered))
	}
	for _, st := range tbl.ordered {
		if err := a.restoreQueryState(d, st, v2); err != nil {
			return err
		}
	}

	// Join state routes back through the current shard map (the shard
	// count may legitimately differ across restarts; message routing is
	// stable per MID either way).
	np, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < np; i++ {
		mid, first, payloads, err := d.pendingGroup()
		if err != nil {
			return err
		}
		js := &a.shards[a.shardOf(mid)]
		js.mu.Lock()
		err = js.joiner.RestorePending(mid, payloads, first)
		js.mu.Unlock()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCheckpoint, err)
		}
	}
	nc, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nc; i++ {
		midRaw, err := d.take(xorcrypt.MIDSize)
		if err != nil {
			return err
		}
		var mid xorcrypt.MID
		copy(mid[:], midRaw)
		atNano, err := d.u64()
		if err != nil {
			return err
		}
		js := &a.shards[a.shardOf(mid)]
		js.mu.Lock()
		js.joiner.RestoreCompleted(mid, time.Unix(0, int64(atNano)))
		js.mu.Unlock()
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCheckpoint, len(d.buf))
	}

	a.malformed.Store(int64(malformed))
	a.duplicates.Store(int64(duplicates))
	a.removedDecoded.Store(int64(removedDecoded))
	a.removedLate.Store(int64(removedLate))
	// The per-shard attribution of demux drops is not meaningful across
	// a restart; fold the totals into shard 0 (Stats sums them anyway).
	a.shards[0].mu.Lock()
	a.shards[0].unknownQID = int64(unknown)
	a.shards[0].badLength = int64(badLen)
	a.shards[0].mu.Unlock()
	return nil
}

func (a *Aggregator) restoreQueryState(d *cpDec, st *queryState, v2 bool) error {
	analyst, err := d.str()
	if err != nil {
		return err
	}
	serial, err := d.u64()
	if err != nil {
		return err
	}
	wire, err := d.u64()
	if err != nil {
		return err
	}
	seed, err := d.u64()
	if err != nil {
		return err
	}
	want := query.ID{Analyst: analyst, Serial: serial}
	if st.q.QID != want || st.qidWire != wire {
		return fmt.Errorf("%w: checkpointed query %s (wire %#x) does not match registered %s",
			ErrCheckpoint, want, wire, st.q.QID)
	}
	if st.seed != int64(seed) {
		return fmt.Errorf("%w: query %s restored with seed %d, checkpointed %d",
			ErrCheckpoint, want, st.seed, int64(seed))
	}
	ps, err := d.f64()
	if err != nil {
		return err
	}
	pp, err := d.f64()
	if err != nil {
		return err
	}
	pq, err := d.f64()
	if err != nil {
		return err
	}
	params := budget.Params{S: ps, RR: rr.Params{P: pp, Q: pq}}
	if err := params.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	st.params.Store(&params)
	wm, err := d.u64()
	if err != nil {
		return err
	}
	st.wmMax.Store(int64(wm))
	decoded, err := d.u64()
	if err != nil {
		return err
	}
	st.decoded.Store(int64(decoded))
	dropped, err := d.u64()
	if err != nil {
		return err
	}
	st.dropped.Store(int64(dropped))
	if v2 {
		ft, err := d.u64()
		if err != nil {
			return err
		}
		// Windows at or below the restored fire horizon already fired
		// (and emitted their cards) in the killed process; re-fires past
		// this point are the WAL replay reproducing the result stream,
		// not new windows, so their cards are suppressed at the source.
		st.firedThrough.Store(int64(ft))
		st.cardsBelow.Store(int64(ft))
	}

	nw, err := d.u32()
	if err != nil {
		return err
	}
	st.fireMu.Lock()
	st.winMu.Lock()
	clear(st.windows)
	for i := uint32(0); i < nw; i++ {
		startNano, err := d.u64()
		if err == nil {
			var endNano, n uint64
			if endNano, err = d.u64(); err == nil {
				if n, err = d.u64(); err == nil {
					var nb uint32
					if nb, err = d.u32(); err == nil {
						err = a.restoreWindow(st, int64(startNano), int64(endNano), int64(n), int(nb), d)
					}
				}
			}
		}
		if err != nil {
			st.winMu.Unlock()
			st.fireMu.Unlock()
			return err
		}
	}
	st.winMu.Unlock()
	st.fireMu.Unlock()

	ne, err := d.u32()
	if err != nil {
		return err
	}
	st.estMu.Lock()
	defer st.estMu.Unlock()
	st.rng = rand.New(rand.NewSource(st.seed))
	clear(st.rrLossCache)
	st.estLog = st.estLog[:0]
	for i := uint32(0); i < ne; i++ {
		kind, err := d.u8()
		if err != nil {
			return err
		}
		if kind == estKindClear {
			clear(st.rrLossCache)
			st.estLog = append(st.estLog, estEvent{clear: true})
			continue
		}
		if kind != estKindCall {
			return fmt.Errorf("%w: estimator event kind %#x", ErrCheckpoint, kind)
		}
		pct, err := d.u32()
		if err != nil {
			return err
		}
		simP, err := d.f64()
		if err != nil {
			return err
		}
		simQ, err := d.f64()
		if err != nil {
			return err
		}
		frac, err := d.f64()
		if err != nil {
			return err
		}
		simN, err := d.u32()
		if err != nil {
			return err
		}
		rounds, err := d.u32()
		if err != nil {
			return err
		}
		wantLoss, err := d.f64()
		if err != nil {
			return err
		}
		// Replaying the simulation against the freshly seeded rng
		// advances it exactly as the original call did; the recomputed
		// loss doubles as an integrity check on the whole replay chain.
		simParams := rr.Params{P: simP, Q: simQ}
		loss, err := rr.SimulateAccuracyLoss(simParams, frac, int(simN), int(rounds), st.rng)
		if err != nil {
			return fmt.Errorf("%w: estimator replay: %v", ErrCheckpoint, err)
		}
		if loss != wantLoss {
			return fmt.Errorf("%w: estimator replay diverged for query %s (pct %d: %v != %v)",
				ErrCheckpoint, st.q.QID, pct, loss, wantLoss)
		}
		st.rrLossCache[int(pct)] = loss
		st.estLog = append(st.estLog, estEvent{
			pct: int(pct), params: simParams, frac: frac,
			simN: int(simN), rounds: int(rounds), loss: loss,
		})
	}
	return nil
}

// restoreWindow rebuilds one open window; the caller holds fireMu and
// winMu.
func (a *Aggregator) restoreWindow(st *queryState, startNano, endNano, n int64, nb int, d *cpDec) error {
	if nb != st.nbuckets {
		return fmt.Errorf("%w: window with %d buckets for query %s (%d)", ErrCheckpoint, nb, st.q.QID, st.nbuckets)
	}
	yes := make([]int, nb)
	for i := range yes {
		y, err := d.u64()
		if err != nil {
			return err
		}
		yes[i] = int(y)
	}
	acc, err := answer.NewShardedAccumulator(st.nbuckets, len(a.shards))
	if err != nil {
		return err
	}
	if err := acc.AddCounts(0, yes, int(n)); err != nil {
		return fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	w := stream.Window{Start: time.Unix(0, startNano), End: time.Unix(0, endNano)}
	st.windows[startNano] = &openWindow{window: w, acc: acc}
	return nil
}

// AppendResults serializes fired results — the piece of a durable
// deployment's output that must survive a crash so the restarted
// process can emit the complete, byte-identical result sequence.
func AppendResults(dst []byte, res []Result) []byte {
	buf := binary.BigEndian.AppendUint32(dst, uint32(len(res)))
	for i := range res {
		r := &res[i]
		buf = appendCpString(buf, r.Query.Analyst)
		buf = binary.BigEndian.AppendUint64(buf, r.Query.Serial)
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Window.Start.UnixNano()))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Window.End.UnixNano()))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Responses))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Population))
		if r.Inverted {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Buckets)))
		for _, b := range r.Buckets {
			buf = appendCpString(buf, b.Label)
			buf = binary.BigEndian.AppendUint64(buf, uint64(b.ObservedYes))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(b.Truthful))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(b.Estimate.Estimate))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(b.Estimate.Margin))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(b.Estimate.Confidence))
		}
	}
	return buf
}

// DecodeResults decodes an AppendResults section, returning the results
// and the unconsumed remainder of data.
func DecodeResults(data []byte) ([]Result, []byte, error) {
	d := &cpDec{buf: data}
	n, err := d.u32()
	if err != nil {
		return nil, nil, err
	}
	out := make([]Result, 0, n)
	for i := uint32(0); i < n; i++ {
		var r Result
		if r.Query.Analyst, err = d.str(); err != nil {
			return nil, nil, err
		}
		if r.Query.Serial, err = d.u64(); err != nil {
			return nil, nil, err
		}
		startNano, err := d.u64()
		if err != nil {
			return nil, nil, err
		}
		endNano, err := d.u64()
		if err != nil {
			return nil, nil, err
		}
		r.Window = stream.Window{Start: time.Unix(0, int64(startNano)), End: time.Unix(0, int64(endNano))}
		resp, err := d.u64()
		if err != nil {
			return nil, nil, err
		}
		r.Responses = int(resp)
		pop, err := d.u64()
		if err != nil {
			return nil, nil, err
		}
		r.Population = int(pop)
		inv, err := d.u8()
		if err != nil {
			return nil, nil, err
		}
		r.Inverted = inv == 1
		nb, err := d.u32()
		if err != nil {
			return nil, nil, err
		}
		for j := uint32(0); j < nb; j++ {
			var b BucketEstimate
			if b.Label, err = d.str(); err != nil {
				return nil, nil, err
			}
			oy, err := d.u64()
			if err != nil {
				return nil, nil, err
			}
			b.ObservedYes = int(oy)
			if b.Truthful, err = d.f64(); err != nil {
				return nil, nil, err
			}
			var est, margin, conf float64
			if est, err = d.f64(); err != nil {
				return nil, nil, err
			}
			if margin, err = d.f64(); err != nil {
				return nil, nil, err
			}
			if conf, err = d.f64(); err != nil {
				return nil, nil, err
			}
			b.Estimate = stats.ConfidenceInterval{Estimate: est, Margin: margin, Confidence: conf}
			r.Buckets = append(r.Buckets, b)
		}
		out = append(out, r)
	}
	return out, d.buf, nil
}

// --- checkpoint wire helpers -------------------------------------------

func appendCpString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// cpDec is a bounds-checked sequential reader over a checkpoint record.
type cpDec struct{ buf []byte }

func (d *cpDec) take(n int) ([]byte, error) {
	if len(d.buf) < n {
		return nil, fmt.Errorf("%w: short record", ErrCheckpoint)
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out, nil
}

func (d *cpDec) u8() (byte, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *cpDec) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (d *cpDec) u64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (d *cpDec) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *cpDec) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	return string(b), err
}

func (d *cpDec) pendingGroup() (xorcrypt.MID, time.Time, [][]byte, error) {
	var mid xorcrypt.MID
	raw, err := d.take(xorcrypt.MIDSize)
	if err != nil {
		return mid, time.Time{}, nil, err
	}
	copy(mid[:], raw)
	firstNano, err := d.u64()
	if err != nil {
		return mid, time.Time{}, nil, err
	}
	ns, err := d.u32()
	if err != nil {
		return mid, time.Time{}, nil, err
	}
	if ns > 1024 {
		return mid, time.Time{}, nil, fmt.Errorf("%w: %d sources", ErrCheckpoint, ns)
	}
	payloads := make([][]byte, ns)
	for s := uint32(0); s < ns; s++ {
		present, err := d.u8()
		if err != nil {
			return mid, time.Time{}, nil, err
		}
		if present == 0 {
			continue
		}
		plen, err := d.u32()
		if err != nil {
			return mid, time.Time{}, nil, err
		}
		p, err := d.take(int(plen))
		if err != nil {
			return mid, time.Time{}, nil, err
		}
		payloads[s] = append([]byte(nil), p...)
	}
	return mid, time.Unix(0, int64(firstNano)), payloads, nil
}
