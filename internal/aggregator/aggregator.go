// Package aggregator implements PrivApprox's aggregator (paper §3.2.4,
// §5): it joins the encrypted answer stream with the key streams by
// message identifier, XOR-decrypts, decodes the randomized answers, runs
// sliding-window aggregation, and produces per-bucket query results with
// a confidence interval combining the two independent error sources —
// sampling (Eq. 2–4) and randomized response (estimated empirically, as
// in the paper's "experimental method").
package aggregator

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/sampling"
	"privapprox/internal/stats"
	"privapprox/internal/stream"
	"privapprox/internal/xorcrypt"
)

// ErrConfig reports an invalid aggregator configuration.
var ErrConfig = errors.New("aggregator: invalid config")

// Config assembles an aggregator for one query.
type Config struct {
	Query      *query.Query
	Params     budget.Params
	Population int // U: number of subscribed clients
	Proxies    int // n: shares per message
	// Origin anchors epoch numbers to event time: event time of epoch e
	// is Origin + e×Frequency.
	Origin time.Time
	// Confidence for the error bound; defaults to 0.95.
	Confidence float64
	// Lateness tolerated before records are dropped; defaults to one
	// slide interval.
	Lateness time.Duration
	// RRLossRounds is the number of micro-benchmark rounds used to
	// estimate the randomized-response accuracy loss; defaults to 5.
	RRLossRounds int
	// Seed makes the RR-loss micro-benchmark deterministic; 0 draws a
	// random seed.
	Seed int64
	// OnDecoded, when set, receives every decoded answer message (its
	// wire bytes and event time) — the hook the historical store uses
	// (§3.3.1).
	OnDecoded func(raw []byte, eventTime time.Time)
}

// BucketEstimate is the query result for one answer bucket.
type BucketEstimate struct {
	Label string
	// ObservedYes is Ry: raw randomized "Yes" responses in the window.
	ObservedYes int
	// Truthful is the RR-corrected count among the window's responses
	// (Ey, or En for inverted queries), clamped to [0, N].
	Truthful float64
	// Estimate is the population-scaled count with the combined
	// sampling + randomization margin.
	Estimate stats.ConfidenceInterval
}

// Result is one fired window.
type Result struct {
	Window     stream.Window
	Responses  int // N: decoded answers in the window
	Population int // U
	Inverted   bool
	Buckets    []BucketEstimate
}

// Aggregator processes share streams for a single query.
type Aggregator struct {
	cfg     Config
	joiner  *stream.ShareJoiner
	op      *stream.WindowedOp[*answer.BitVector, *answer.Accumulator, *answer.Accumulator]
	qidWire uint64
	rng     *rand.Rand

	rrLossCache map[int]float64 // yes-fraction percent → simulated loss

	malformed  atomic.Int64
	duplicates atomic.Int64
	decoded    atomic.Int64
}

// New validates the configuration and builds the aggregator.
func New(cfg Config) (*Aggregator, error) {
	if cfg.Query == nil {
		return nil, fmt.Errorf("%w: nil query", ErrConfig)
	}
	if err := cfg.Query.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Population <= 0 {
		return nil, fmt.Errorf("%w: population %d", ErrConfig, cfg.Population)
	}
	if cfg.Proxies < 2 {
		return nil, fmt.Errorf("%w: %d proxies", ErrConfig, cfg.Proxies)
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.95
	}
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		return nil, fmt.Errorf("%w: confidence %v", ErrConfig, cfg.Confidence)
	}
	if cfg.Lateness == 0 {
		cfg.Lateness = cfg.Query.Slide
	}
	if cfg.RRLossRounds == 0 {
		cfg.RRLossRounds = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = rand.Int63()
	}
	joiner, err := stream.NewShareJoiner(cfg.Proxies, cfg.Query.Window)
	if err != nil {
		return nil, err
	}
	assigner, err := stream.NewSlidingAssignerAt(cfg.Query.Window, cfg.Query.Slide, cfg.Origin)
	if err != nil {
		return nil, err
	}
	nbuckets := len(cfg.Query.Buckets)
	agg := stream.Aggregation[*answer.BitVector, *answer.Accumulator, *answer.Accumulator]{
		New: func() *answer.Accumulator {
			acc, _ := answer.NewAccumulator(nbuckets)
			return acc
		},
		Add: func(acc *answer.Accumulator, v *answer.BitVector) *answer.Accumulator {
			// Size mismatches were filtered at decode time.
			_ = acc.Add(v)
			return acc
		},
		Result: func(acc *answer.Accumulator) *answer.Accumulator { return acc },
	}
	return &Aggregator{
		cfg:         cfg,
		joiner:      joiner,
		op:          stream.NewWindowedOp(assigner, cfg.Lateness, agg),
		qidWire:     cfg.Query.QID.Uint64(),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		rrLossCache: make(map[int]float64),
	}, nil
}

// SubmitShare folds in one share from proxy stream source (0 ≤ source <
// Proxies). When the share completes a message, the message is
// decrypted, decoded, and assigned to windows; any windows closed by
// the advancing watermark are returned as results.
func (a *Aggregator) SubmitShare(share xorcrypt.Share, source int, arrival time.Time) ([]Result, error) {
	joined, err := a.joiner.Add(share.MID.String(), source, share.Payload, arrival)
	if err != nil {
		if errors.Is(err, stream.ErrDuplicate) {
			a.duplicates.Add(1)
			return nil, nil
		}
		return nil, err
	}
	if joined == nil {
		return nil, nil
	}
	shares := make([]xorcrypt.Share, len(joined.Payloads))
	for i, p := range joined.Payloads {
		shares[i] = xorcrypt.Share{MID: share.MID, Payload: p}
	}
	plain, err := xorcrypt.Join(shares)
	if err != nil {
		a.malformed.Add(1)
		return nil, nil
	}
	var msg answer.Message
	if err := msg.UnmarshalBinary(plain); err != nil {
		a.malformed.Add(1)
		return nil, nil
	}
	if msg.QueryID != a.qidWire || msg.Answer.Len() != len(a.cfg.Query.Buckets) {
		a.malformed.Add(1)
		return nil, nil
	}
	a.decoded.Add(1)
	eventTime := a.cfg.Origin.Add(time.Duration(msg.Epoch) * a.cfg.Query.Frequency)
	if a.cfg.OnDecoded != nil {
		a.cfg.OnDecoded(plain, eventTime)
	}
	fired := a.op.Process(stream.Event[*answer.BitVector]{Time: eventTime, Value: msg.Answer})
	return a.results(fired)
}

// AdvanceTo moves the watermark forward (e.g. on an epoch timer) and
// returns any windows that close; it also sweeps stale partial joins.
func (a *Aggregator) AdvanceTo(t time.Time) ([]Result, error) {
	a.joiner.Sweep(t.Add(-a.cfg.Query.Window))
	return a.results(a.op.AdvanceTo(t))
}

// Flush closes all open windows at end of stream.
func (a *Aggregator) Flush() ([]Result, error) {
	return a.results(a.op.Flush())
}

// Decoded returns the number of successfully decoded answers.
func (a *Aggregator) Decoded() int64 { return a.decoded.Load() }

// Malformed returns the number of joined messages that failed
// decryption or decoding (malicious or corrupt clients).
func (a *Aggregator) Malformed() int64 { return a.malformed.Load() }

// Duplicates returns the number of replayed shares rejected by the
// joiner.
func (a *Aggregator) Duplicates() int64 { return a.duplicates.Load() }

// PendingJoins returns the number of messages waiting for shares.
func (a *Aggregator) PendingJoins() int { return a.joiner.PendingCount() }

func (a *Aggregator) results(fired []stream.WindowResult[*answer.Accumulator]) ([]Result, error) {
	var out []Result
	for _, f := range fired {
		res, err := a.estimate(f.Window, f.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// estimate turns a window's accumulated randomized answers into the
// paper's queryResult ± errorBound (§3.2.4). The SRS population is
// measured in answer slots: every client produces one answer per epoch,
// so a window spanning k epochs draws from U×k potential answers.
func (a *Aggregator) estimate(w stream.Window, acc *answer.Accumulator) (Result, error) {
	epochs := int(a.cfg.Query.Window / a.cfg.Query.Frequency)
	if epochs < 1 {
		epochs = 1
	}
	return a.estimateWithPopulation(w, acc, a.cfg.Population*epochs)
}

func (a *Aggregator) estimateWithPopulation(w stream.Window, acc *answer.Accumulator, effPopulation int) (Result, error) {
	n := acc.N()
	if effPopulation < n {
		// More answers than slots (e.g. replayed epochs): treat the
		// observed set as the whole population.
		effPopulation = n
	}
	res := Result{
		Window:     w,
		Responses:  n,
		Population: effPopulation,
		Inverted:   a.cfg.Query.Inverted,
	}
	for i, label := range a.cfg.Query.Buckets.Labels() {
		be := BucketEstimate{Label: label, ObservedYes: acc.Yes(i)}
		if n == 0 {
			be.Estimate = stats.ConfidenceInterval{Confidence: a.cfg.Confidence, Margin: math.Inf(1)}
			res.Buckets = append(res.Buckets, be)
			continue
		}
		// Randomized-response correction (Eq. 5), inverted when the
		// analyst flipped the query (§3.3.2).
		var truthful float64
		var err error
		if a.cfg.Query.Inverted {
			truthful, err = rr.EstimateNo(a.cfg.Params.RR, acc.Yes(i), n)
		} else {
			truthful, err = rr.EstimateYes(a.cfg.Params.RR, acc.Yes(i), n)
		}
		if err != nil {
			return Result{}, err
		}
		truthful = clamp(truthful, 0, float64(n))
		be.Truthful = truthful

		// Sampling scale-up and margin (Eq. 2–4) over the corrected
		// window counts.
		moments, err := sampling.BinomialMoments(int(math.Round(truthful)), n)
		if err != nil {
			return Result{}, err
		}
		srs, err := sampling.EstimateSumFromMoments(moments, effPopulation, a.cfg.Confidence)
		if err != nil {
			return Result{}, err
		}
		// Randomization margin: simulated accuracy loss at this bucket's
		// truthful fraction (the paper's micro-benchmark method).
		rrLoss, err := a.rrLoss(truthful/float64(n), n)
		if err != nil {
			return Result{}, err
		}
		be.Estimate = stats.ConfidenceInterval{
			Estimate:   srs.Sum,
			Margin:     srs.Margin + rrLoss*srs.Sum,
			Confidence: a.cfg.Confidence,
		}
		res.Buckets = append(res.Buckets, be)
	}
	return res, nil
}

// rrLoss estimates the randomized-response accuracy loss at a truthful
// fraction via simulation, memoized on the fraction percent.
func (a *Aggregator) rrLoss(fraction float64, n int) (float64, error) {
	if fraction <= 0 {
		return 0, nil
	}
	pct := int(math.Round(fraction * 100))
	if pct == 0 {
		pct = 1
	}
	if loss, ok := a.rrLossCache[pct]; ok {
		return loss, nil
	}
	simN := n
	if simN > 10000 {
		simN = 10000
	}
	if simN < 100 {
		simN = 100
	}
	params := a.cfg.Params.RR
	frac := float64(pct) / 100
	if a.cfg.Query.Inverted {
		// The inverted query estimates the "No" side: simulate its loss.
		params = params.Invert()
	}
	loss, err := rr.SimulateAccuracyLoss(params, frac, simN, a.cfg.RRLossRounds, a.rng)
	if err != nil {
		return 0, err
	}
	a.rrLossCache[pct] = loss
	return loss, nil
}

// RelativeWidth is the feedback signal for the budget controller: the
// mean over buckets of margin/estimate, skipping empty buckets.
func RelativeWidth(res Result) float64 {
	var sum float64
	var k int
	for _, b := range res.Buckets {
		if b.Estimate.Estimate <= 0 || math.IsInf(b.Estimate.Margin, 1) {
			continue
		}
		sum += b.Estimate.Margin / b.Estimate.Estimate
		k++
	}
	if k == 0 {
		return math.Inf(1)
	}
	return sum / float64(k)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
