// Package aggregator implements PrivApprox's aggregator (paper §3.2.4,
// §5): it joins the encrypted answer stream with the key streams by
// message identifier, XOR-decrypts, decodes the randomized answers, runs
// sliding-window aggregation, and produces per-bucket query results with
// a confidence interval combining the two independent error sources —
// sampling (Eq. 2–4) and randomized response (estimated empirically, as
// in the paper's "experimental method").
//
// # Multi-query demultiplexing
//
// One aggregator serves any number of concurrent queries over the same
// share streams. The share join is query-agnostic — shares are keyed by
// message identifier, and the query a message belongs to is only
// revealed by the wire QueryID after decryption — so the sharded join
// front-end is shared, and everything after decode (windows, watermark,
// firing, estimation, budgets) lives in per-query state demultiplexed
// by the wire QueryID. Queries can be added and removed while shares
// are in flight; messages for unknown queries and messages whose answer
// length does not match their query are counted per shard and surfaced
// through Stats, never silently discarded.
package aggregator

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/sampling"
	"privapprox/internal/stats"
	"privapprox/internal/stream"
	"privapprox/internal/telemetry"
	"privapprox/internal/telemetry/lineage"
	"privapprox/internal/xorcrypt"
)

// Errors reported by aggregator configuration and query registration.
var (
	ErrConfig = errors.New("aggregator: invalid config")
	// ErrWireCollision reports two distinct query IDs hashing to the same
	// 64-bit wire identifier — the demux key inside answer messages.
	ErrWireCollision = errors.New("aggregator: wire query-ID collision")
	// ErrUnknownQuery reports an operation on a query that is not
	// registered.
	ErrUnknownQuery = errors.New("aggregator: unknown query")
)

// Config assembles an aggregator. Query/Params/Seed describe the first
// query (optional for NewMulti; further queries arrive via AddQuery);
// everything else is shared across queries.
type Config struct {
	Query      *query.Query
	Params     budget.Params
	Population int // U: number of subscribed clients
	Proxies    int // n: shares per message
	// Origin anchors epoch numbers to event time: event time of epoch e
	// is Origin + e×Frequency (per query).
	Origin time.Time
	// Confidence for the error bound; defaults to 0.95.
	Confidence float64
	// Lateness tolerated before records are dropped; defaults to one
	// slide interval (per query).
	Lateness time.Duration
	// RRLossRounds is the number of micro-benchmark rounds used to
	// estimate the randomized-response accuracy loss; defaults to 5.
	RRLossRounds int
	// Seed makes the RR-loss micro-benchmark deterministic; 0 draws a
	// random seed. Each query registered through AddQuery may override
	// it, so a query produces the same estimator stream whether it runs
	// alone or among others.
	Seed int64
	// Shards splits the share-join map and the per-window accumulators
	// into independently locked shards keyed by message-ID hash, so
	// SubmitShare from concurrent drain goroutines scales instead of
	// serializing on one lock. Defaults to GOMAXPROCS. Results and
	// counters are identical for every shard count: per-bucket counts
	// are integer sums, so the merged window state does not depend on
	// how messages were distributed over shards.
	Shards int
	// OnDecoded, when set, receives every decoded answer message (its
	// wire bytes and event time) — the hook the historical store uses
	// (§3.3.1). It may be invoked concurrently from multiple
	// SubmitShare goroutines, so the callback must be safe for
	// concurrent use, and the order of invocations within an epoch is
	// scheduling-dependent (a reproducible store sequence requires a
	// single submitter).
	OnDecoded func(raw []byte, eventTime time.Time)
}

// QuerySpec registers one query with an aggregator.
type QuerySpec struct {
	Query  *query.Query
	Params budget.Params
	// Seed for the query's estimator randomness; 0 inherits Config.Seed.
	Seed int64
	// Lateness tolerated for this query; 0 defaults to the query slide.
	Lateness time.Duration
	// Confidence for this query's error bounds; 0 inherits the
	// aggregator default.
	Confidence float64
	// Shed is the overload shed threshold ∈ (0, 1] the estimator should
	// report with fired windows; 0 means "leave unchanged" (new queries
	// start at 1, no shedding). The estimate itself needs no correction —
	// the SRS scale-up uses the *observed* sample size, so shedding
	// shows up as honestly wider margins, not bias — but results carry
	// the threshold so consumers can see approximation being spent.
	Shed float64
}

// BucketEstimate is the query result for one answer bucket.
type BucketEstimate struct {
	Label string
	// ObservedYes is Ry: raw randomized "Yes" responses in the window.
	ObservedYes int
	// Truthful is the RR-corrected count among the window's responses
	// (Ey, or En for inverted queries), clamped to [0, N].
	Truthful float64
	// Estimate is the population-scaled count with the combined
	// sampling + randomization margin.
	Estimate stats.ConfidenceInterval
}

// Result is one fired window of one query.
type Result struct {
	// Query identifies which query the window belongs to.
	Query      query.ID
	Window     stream.Window
	Responses  int // N: decoded answers in the window
	Population int // U
	Inverted   bool
	Buckets    []BucketEstimate
	// Shed is the overload shed threshold in effect when the window
	// fired (1 = no shedding). The margins already reflect the realized
	// sample size; Shed documents *why* they widened.
	Shed float64
}

// Stats is a snapshot of the aggregator's message accounting. Decoded
// counts successfully demultiplexed answers; every other counter is a
// reason a message (or share) went no further, so the sum of drops is
// always observable — a demux bug shows up as UnknownQuery or
// LengthMismatch climbing, not as silence.
type Stats struct {
	// Decoded answers accepted into per-query windows.
	Decoded int64
	// Malformed joined messages that failed decryption or decoding.
	Malformed int64
	// Duplicates are replayed shares rejected by the joiner.
	Duplicates int64
	// Late answers discarded behind their query's watermark.
	Late int64
	// UnknownQuery counts well-formed messages whose wire QueryID
	// matches no registered query (a stopped query's stragglers, or a
	// demux bug).
	UnknownQuery int64
	// LengthMismatch counts messages whose answer length does not match
	// their query's bucket count.
	LengthMismatch int64
	// Queries is the number of registered queries.
	Queries int
}

// Dropped returns the total number of discarded messages across every
// drop reason.
func (s Stats) Dropped() int64 {
	return s.Malformed + s.Duplicates + s.Late + s.UnknownQuery + s.LengthMismatch
}

// Aggregator processes share streams for any number of queries. It is
// safe for concurrent use: shares from any number of drain goroutines
// may be submitted at once. The hot path — join, decrypt, decode,
// demux, window accumulation — is sharded by message-ID hash with
// per-shard locks; only watermark advancement and window firing (per
// query) serialize, which keeps the sequence of fired results (and the
// rng each query's estimator consumes) deterministic under fixed seeds
// regardless of submission interleaving within an epoch.
type Aggregator struct {
	cfg    Config
	shards []joinShard

	// states is the registered-query table, copy-on-write so the demux
	// lookup on the submit hot path is one atomic load; stateMu
	// serializes mutations (AddQuery/RemoveQuery) and guards nextOrd.
	states  atomic.Pointer[stateTable]
	stateMu sync.Mutex
	nextOrd int

	malformed  atomic.Int64
	duplicates atomic.Int64
	// removedDecoded/removedLate preserve a removed query's counters so
	// Decoded()/Dropped()/Stats() never go backwards across RemoveQuery.
	removedDecoded atomic.Int64
	removedLate    atomic.Int64

	// tracer, when set, receives join-stage spans and window-fire spans
	// (telemetry.go); nil costs the hot path one atomic load.
	tracer atomic.Pointer[telemetry.Tracer]
	// cards, when set, receives one provenance result card per fired
	// window (telemetry.go). Card assembly runs inside fireLocked —
	// already off the share hot path and already allocating for the
	// estimate — so the zero-alloc submit contract is untouched.
	cards atomic.Pointer[lineage.Recorder]
}

// stateTable is one immutable snapshot of the registered queries.
type stateTable struct {
	byWire  map[uint64]*queryState
	ordered []*queryState // registration order: the deterministic tie-break
	// single short-circuits the map lookup in the (common) one-query
	// case.
	single *queryState
	// maxWindow bounds how long partial joins are retained across all
	// registered queries.
	maxWindow time.Duration
}

// queryState is everything per-query: window registry, watermark,
// firing, estimator. The shared join front-end routes decoded messages
// here by wire QueryID.
type queryState struct {
	q *query.Query
	// params is swapped atomically by AddQuery's in-place parameter
	// update while drain goroutines read it during estimation, so the
	// multi-word struct is held behind a pointer.
	params     atomic.Pointer[budget.Params]
	lateness   time.Duration
	confidence float64
	qidWire    uint64
	// qname is the query ID rendered once at registration, so fire
	// spans and labeled telemetry samples never format on a hot path.
	qname    string
	nbuckets int
	ord      int   // registration index, for deterministic result order
	seed     int64 // effective estimator seed, recorded for checkpoint verification
	assigner *stream.SlidingAssigner

	// winMu guards the registry of open windows; accumulation inside a
	// window goes through the sharded accumulator, not this lock.
	winMu   sync.RWMutex
	windows map[int64]*openWindow // keyed by window start UnixNano

	// fireMu serializes window firing so each window fires exactly once
	// and results come out in window-start order. Lock order: fireMu
	// before winMu.
	fireMu sync.Mutex
	// wmMax is the maximum observed event time as UnixNano (wmUnseen
	// before any event); the watermark is wmMax − lateness. Kept atomic
	// so the sharded add path never serializes on watermark reads.
	wmMax   atomic.Int64
	dropped atomic.Int64
	decoded atomic.Int64
	// firedThrough is the maximum window start (UnixNano) this query
	// has fired, wmUnseen before any fire. Checkpointed, so a restored
	// aggregator knows which windows' cards were already emitted.
	firedThrough atomic.Int64
	// cardsBelow suppresses card emission for windows starting at or
	// below it (wmUnseen = no suppression): set from a restored
	// checkpoint's firedThrough so re-fired windows do not produce
	// duplicate cards. The Recorder's own log-scan dedup covers windows
	// fired after the last checkpoint; this is the cheap first line.
	cardsBelow atomic.Int64
	// lateMu guards lateByWin: late answers attributed to the windows
	// they would have joined, drained into each window's card at fire
	// time and pruned for windows already fired.
	lateMu    sync.Mutex
	lateByWin map[int64]int64
	// shedBits is the current shed threshold as Float64bits, atomic so
	// the SLO controller can move it while windows fire. Zero (never
	// stored) reads as 1.
	shedBits atomic.Uint64

	// estMu guards the estimator's rng and memoized RR-loss cache
	// (estimates normally run under fireMu; BatchAnalyze calls the
	// estimator directly).
	estMu       sync.Mutex
	rng         *rand.Rand
	rrLossCache map[int]float64 // yes-fraction percent → simulated loss
	// estLog records every rng-consuming estimator event (simulation
	// calls and cache clears) in order. The rng's internal state cannot
	// be serialized, so a checkpoint stores this log instead and Restore
	// replays it against a freshly seeded rng — reproducing both the
	// memoized cache and the exact rng position. Guarded by estMu.
	//
	// The log grows for the life of the query — bounded by ~100 cache
	// misses per randomization-parameter generation plus one clear per
	// retune — so checkpoints of a long-lived, frequently retuned query
	// grow with its history. Compacting (recording raw draw counts
	// instead of simulation inputs) would cap this at the cost of a
	// format change; revisit if retune-heavy deployments appear.
	estLog []estEvent
}

// estEvent is one entry of the estimator replay log: either a cache
// clear (a randomization-parameter change invalidated the memoized
// losses) or one SimulateAccuracyLoss call with the inputs it was made
// with and the loss it produced (re-verified on restore).
type estEvent struct {
	clear  bool
	pct    int
	params rr.Params // as passed to the simulation (inversion applied)
	frac   float64
	simN   int
	rounds int
	loss   float64
}

// joinShard is one lock's worth of share-join state plus the scratch
// buffers the join → decrypt → decode tail reuses across messages, and
// the per-shard demux drop counters (plain ints — they are only touched
// under mu). All scratch is touched only under mu (SubmitShare holds
// the shard lock through ingest), so buffers never alias across
// concurrent messages; the struct is padded to a cache-line multiple so
// adjacent shard locks do not false-share (the size check pins this).
type joinShard struct {
	mu         sync.Mutex
	joiner     *stream.KeyedShareJoiner[xorcrypt.MID]
	plain      []byte           // reusable XOR-joined plaintext
	vec        answer.BitVector // reusable zero-copy decode view
	msg        answer.Message
	wins       []stream.Window // reusable window-assignment scratch
	unknownQID int64           // decoded messages matching no registered query
	badLength  int64           // messages whose answer length mismatched their query
	_          [56]byte        // pad to a cache-line multiple
}

// openWindow is one window still accumulating answers.
type openWindow struct {
	window stream.Window
	acc    *answer.ShardedAccumulator
}

// New validates the configuration and builds a single-query aggregator
// (Config.Query is required). Additional queries may still be added
// with AddQuery.
func New(cfg Config) (*Aggregator, error) {
	if cfg.Query == nil {
		return nil, fmt.Errorf("%w: nil query", ErrConfig)
	}
	return NewMulti(cfg)
}

// NewMulti builds an aggregator that may start with no queries at all:
// when cfg.Query is nil the aggregator accepts shares (joining and
// counting them) and registers queries dynamically via AddQuery.
func NewMulti(cfg Config) (*Aggregator, error) {
	if cfg.Population <= 0 {
		return nil, fmt.Errorf("%w: population %d", ErrConfig, cfg.Population)
	}
	if cfg.Proxies < 2 {
		return nil, fmt.Errorf("%w: %d proxies", ErrConfig, cfg.Proxies)
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.95
	}
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		return nil, fmt.Errorf("%w: confidence %v", ErrConfig, cfg.Confidence)
	}
	if cfg.RRLossRounds == 0 {
		cfg.RRLossRounds = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = rand.Int63()
	}
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("%w: %d shards", ErrConfig, cfg.Shards)
	}
	shards := make([]joinShard, cfg.Shards)
	for i := range shards {
		joiner, err := stream.NewKeyedShareJoiner[xorcrypt.MID](cfg.Proxies, 0)
		if err != nil {
			return nil, err
		}
		shards[i].joiner = joiner
	}
	a := &Aggregator{cfg: cfg, shards: shards}
	a.states.Store(&stateTable{byWire: map[uint64]*queryState{}})
	if cfg.Query != nil {
		if err := a.AddQuery(QuerySpec{
			Query:      cfg.Query,
			Params:     cfg.Params,
			Seed:       cfg.Seed,
			Lateness:   cfg.Lateness,
			Confidence: cfg.Confidence,
		}); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// AddQuery registers one query. Registering an ID that is already
// active swaps its parameters in place (the feedback loop's
// redistribution path) without touching its windows or estimator
// state; registering a distinct ID whose 64-bit wire hash collides with
// an active query is rejected with ErrWireCollision — the wire QueryID
// is the demux key, so a collision would silently merge two queries'
// answers.
func (a *Aggregator) AddQuery(spec QuerySpec) error {
	if spec.Query == nil {
		return fmt.Errorf("%w: nil query", ErrConfig)
	}
	if err := spec.Query.Validate(); err != nil {
		return err
	}
	if err := spec.Params.Validate(); err != nil {
		return err
	}
	if spec.Seed == 0 {
		spec.Seed = a.cfg.Seed
	}
	if spec.Lateness == 0 {
		spec.Lateness = spec.Query.Slide
	}
	if spec.Confidence == 0 {
		spec.Confidence = a.cfg.Confidence
	}
	if spec.Confidence <= 0 || spec.Confidence >= 1 {
		return fmt.Errorf("%w: confidence %v", ErrConfig, spec.Confidence)
	}
	wire := spec.Query.QID.Uint64()

	a.stateMu.Lock()
	defer a.stateMu.Unlock()
	old := a.states.Load()
	if st := old.byWire[wire]; st != nil {
		if st.q.QID != spec.Query.QID {
			return fmt.Errorf("%w: %s and %s both map to %#x",
				ErrWireCollision, st.q.QID, spec.Query.QID, wire)
		}
		// Parameter update in place: windows and the estimator keep
		// running undisturbed. The feedback controller only moves the
		// sampling fraction, but AddQuery is a public API — if the
		// randomization pair did change, the memoized RR-loss
		// simulations are no longer valid and must be redone.
		prev := st.params.Load()
		st.params.Store(&spec.Params)
		if prev.RR != spec.Params.RR {
			st.estMu.Lock()
			clear(st.rrLossCache)
			st.estLog = append(st.estLog, estEvent{clear: true})
			st.estMu.Unlock()
		}
		if spec.Shed != 0 {
			st.storeShed(spec.Shed)
		}
		return nil
	}
	assigner, err := stream.NewSlidingAssignerAt(spec.Query.Window, spec.Query.Slide, a.cfg.Origin)
	if err != nil {
		return err
	}
	st := &queryState{
		q:          spec.Query,
		lateness:   spec.Lateness,
		confidence: spec.Confidence,
		qidWire:    wire,
		qname:      spec.Query.QID.String(),
		nbuckets:   len(spec.Query.Buckets),
		// ord comes from a monotonic counter, not len(ordered): after a
		// removal the next registration must still sort after every
		// earlier one in the (window start, registration order) result
		// order.
		ord:         a.nextOrd,
		seed:        spec.Seed,
		assigner:    assigner,
		windows:     make(map[int64]*openWindow),
		rng:         rand.New(rand.NewSource(spec.Seed)),
		rrLossCache: make(map[int]float64),
		lateByWin:   make(map[int64]int64),
	}
	a.nextOrd++
	st.params.Store(&spec.Params)
	st.wmMax.Store(wmUnseen)
	st.firedThrough.Store(wmUnseen)
	st.cardsBelow.Store(wmUnseen)
	st.storeShed(spec.Shed)
	a.swapStates(old, st, nil)
	a.updateRetain()
	return nil
}

// storeShed normalizes and records a query's shed threshold.
func (st *queryState) storeShed(shed float64) {
	if !(shed > 0) || shed > 1 {
		shed = 1
	}
	st.shedBits.Store(math.Float64bits(shed))
}

// loadShed returns the query's current shed threshold (1 = unshed).
func (st *queryState) loadShed() float64 {
	bits := st.shedBits.Load()
	if bits == 0 {
		return 1
	}
	return math.Float64frombits(bits)
}

// SetShed records a query's overload shed threshold ∈ (0, 1] so
// subsequently fired windows report it (values outside the range
// normalize to 1). It touches no window or estimator state — the
// estimate is already realized-rate-aware — and is safe to call
// concurrently with firing.
func (a *Aggregator) SetShed(id query.ID, shed float64) error {
	st := a.states.Load().byWire[id.Uint64()]
	if st == nil || st.q.QID != id {
		return fmt.Errorf("%w: %s", ErrUnknownQuery, id)
	}
	st.storeShed(shed)
	return nil
}

// Shed returns a query's current shed threshold.
func (a *Aggregator) Shed(id query.ID) (float64, error) {
	st := a.states.Load().byWire[id.Uint64()]
	if st == nil || st.q.QID != id {
		return 0, fmt.Errorf("%w: %s", ErrUnknownQuery, id)
	}
	return st.loadShed(), nil
}

// updateRetain re-derives the joiner's completed-key retention horizon
// as the maximum window over the active query set. Caller holds
// stateMu; the lock order stateMu → shard mu is safe because no shard
// holder ever takes stateMu.
func (a *Aggregator) updateRetain() {
	retain := a.states.Load().maxWindow
	for i := range a.shards {
		js := &a.shards[i]
		js.mu.Lock()
		js.joiner.SetRetain(retain)
		js.mu.Unlock()
	}
}

// RemoveQuery deregisters a query, flushing and returning its still-open
// windows. Shares of the query still in flight join as usual but then
// count under Stats.UnknownQuery.
func (a *Aggregator) RemoveQuery(id query.ID) ([]Result, error) {
	wire := id.Uint64()
	a.stateMu.Lock()
	old := a.states.Load()
	st := old.byWire[wire]
	if st == nil || st.q.QID != id {
		a.stateMu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownQuery, id)
	}
	a.swapStates(old, nil, st)
	a.updateRetain()
	a.stateMu.Unlock()

	st.fireMu.Lock()
	res, err := a.fireLocked(st, true)
	st.fireMu.Unlock()
	// Fold the removed query's counters into the aggregator-level
	// totals so Decoded()/Dropped()/Stats() never move backwards.
	a.removedDecoded.Add(st.decoded.Load())
	a.removedLate.Add(st.dropped.Load())
	return res, err
}

// swapStates installs a new state table derived from old with add
// appended and/or del removed. Caller holds stateMu.
func (a *Aggregator) swapStates(old *stateTable, add, del *queryState) {
	next := &stateTable{byWire: make(map[uint64]*queryState, len(old.byWire)+1)}
	for _, st := range old.ordered {
		if st == del {
			continue
		}
		next.byWire[st.qidWire] = st
		next.ordered = append(next.ordered, st)
	}
	if add != nil {
		next.byWire[add.qidWire] = add
		next.ordered = append(next.ordered, add)
	}
	for _, st := range next.ordered {
		if st.q.Window > next.maxWindow {
			next.maxWindow = st.q.Window
		}
	}
	if len(next.ordered) == 1 {
		next.single = next.ordered[0]
	}
	a.states.Store(next)
}

// stateFor demultiplexes a wire QueryID to its per-query state, nil
// when no such query is registered. One atomic load plus (at most) one
// map lookup — allocation-free on the submit hot path.
func (a *Aggregator) stateFor(wire uint64) *queryState {
	t := a.states.Load()
	if s := t.single; s != nil && s.qidWire == wire {
		return s
	}
	return t.byWire[wire]
}

// ActiveQueries returns the registered query IDs in registration order.
func (a *Aggregator) ActiveQueries() []query.ID {
	t := a.states.Load()
	out := make([]query.ID, len(t.ordered))
	for i, st := range t.ordered {
		out[i] = st.q.QID
	}
	return out
}

// Shards returns the configured shard count.
func (a *Aggregator) Shards() int { return len(a.shards) }

// shardOf routes a message ID to its shard; all shares of one message
// land on the same shard, so each join group lives under exactly one
// lock. FNV-1a is inlined — hash.Hash32 would allocate per share on
// the hot path.
func (a *Aggregator) shardOf(mid xorcrypt.MID) int {
	if len(a.shards) == 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range mid {
		h ^= uint32(b)
		h *= prime32
	}
	return int(h % uint32(len(a.shards)))
}

// SubmitShare folds in one share from proxy stream source (0 ≤ source <
// Proxies). When the share completes a message, the message is
// decrypted, decoded, demultiplexed to its query, and assigned to that
// query's windows; any windows closed by the advancing watermark are
// returned as results.
//
// SubmitShare takes ownership of share.Payload: the joiner retains it
// until the message's remaining shares arrive (or a sweep drops the
// group), so the caller must not reuse the payload's backing bytes
// after submitting. Consumers polling the pub/sub transports always
// hand over freshly copied record values, so the pipeline satisfies
// this for free.
func (a *Aggregator) SubmitShare(share xorcrypt.Share, source int, arrival time.Time) ([]Result, error) {
	shard := a.shardOf(share.MID)
	js := &a.shards[shard]
	js.mu.Lock()
	res, err := a.submitLocked(js, share, source, arrival, shard)
	js.mu.Unlock()
	return res, err
}

// submitLocked runs the join → decrypt → decode → demux → accumulate
// tail under the shard lock so the shard-owned scratch (pooled join
// group, joined plaintext, decode view, window slice) is reused across
// messages without ever being shared between goroutines. The caller
// holds js.mu.
//
// Lock order: js.mu may be taken before a query's fireMu (via ingest);
// nothing acquires a shard lock while holding fireMu or winMu, so the
// order is acyclic.
func (a *Aggregator) submitLocked(js *joinShard, share xorcrypt.Share, source int, arrival time.Time, shard int) ([]Result, error) {
	joined, err := js.joiner.Add(share.MID, source, share.Payload, arrival)
	if err != nil {
		if errors.Is(err, stream.ErrDuplicate) {
			a.duplicates.Add(1)
			return nil, nil
		}
		return nil, err
	}
	if joined == nil {
		return nil, nil
	}
	// The group's payloads are consumed by the XOR join right here, so
	// the group can go straight back to the joiner's pool.
	plain, err := xorcrypt.JoinPayloadsInto(js.plain[:0], joined.Payloads)
	js.joiner.Recycle(joined)
	if plain != nil {
		js.plain = plain
	}
	if err != nil {
		a.malformed.Add(1)
		return nil, nil
	}
	if err := js.msg.UnmarshalBinaryView(plain, &js.vec); err != nil {
		a.malformed.Add(1)
		return nil, nil
	}
	msg := &js.msg
	st := a.stateFor(msg.QueryID)
	if st == nil {
		js.unknownQID++
		return nil, nil
	}
	if msg.Answer.Len() != st.nbuckets {
		js.badLength++
		return nil, nil
	}
	st.decoded.Add(1)
	eventTime := a.cfg.Origin.Add(time.Duration(msg.Epoch) * st.q.Frequency)
	if a.cfg.OnDecoded != nil {
		// Ownership contract: plain is shard scratch, valid only for
		// the duration of the callback — the hook must copy what it
		// keeps (histstore.Append serializes into its own buffer).
		a.cfg.OnDecoded(plain, eventTime)
	}
	return a.ingest(js, st, eventTime, msg.Answer, shard)
}

// ingest assigns one decoded answer to its query's windows and advances
// that query's watermark, firing any windows the advance closes. Only
// an observation that actually moves the watermark takes the fire path
// — within an epoch all event times of one query are equal, so the
// drain goroutines run the sharded adds without ever touching fireMu.
//
// ingest/isLate/observe/fireLocked intentionally fork the windowing
// semantics of stream.WindowedOp + stream.WatermarkTracker (watermark =
// max event time − lateness, strict-Before late check, fire on window
// End ≤ watermark, start-ordered results) into this sharded,
// concurrency-safe form; the stream package keeps the generic
// single-threaded operator. A semantic change to either must be made in
// both.
func (a *Aggregator) ingest(js *joinShard, st *queryState, eventTime time.Time, vec *answer.BitVector, shard int) ([]Result, error) {
	if st.isLate(eventTime) {
		// A late event can never advance the watermark, so nothing can
		// fire on its account. With the provenance plane attached, charge
		// the drop to the window(s) the answer would have joined so their
		// cards carry per-window late counts.
		st.dropped.Add(1)
		if a.cards.Load() != nil {
			js.wins = st.assigner.AppendWindowsFor(js.wins[:0], eventTime)
			st.lateMu.Lock()
			for _, w := range js.wins {
				st.lateByWin[w.Start.UnixNano()]++
			}
			st.lateMu.Unlock()
		}
		return nil, nil
	}

	refused := false
	js.wins = st.assigner.AppendWindowsFor(js.wins[:0], eventTime)
	for _, w := range js.wins {
		ow := a.openWindowFor(st, w)
		if ow == nil {
			// The window fired while we raced to it; the answer is by
			// definition late there.
			refused = true
			continue
		}
		if err := ow.acc.Add(shard, vec); err != nil {
			// ErrClosed: the window fired between our lookup and the
			// add — late, same as above. (Size mismatches were filtered
			// at decode time.)
			if errors.Is(err, answer.ErrClosed) {
				refused = true
			}
		}
	}
	if refused {
		// Count per answer, not per window: an answer racing a fire may
		// be refused by several of its sliding windows (and in rare
		// interleavings still land in others), but it is one discarded
		// answer.
		st.dropped.Add(1)
	}

	if !st.observe(eventTime) {
		return nil, nil
	}
	st.fireMu.Lock()
	res, err := a.fireLocked(st, false)
	st.fireMu.Unlock()
	return res, err
}

// wmUnseen marks "no event observed yet"; it cannot collide with a
// real UnixNano (event times near the int64 minimum are out of range
// for the window arithmetic anyway).
const wmUnseen = math.MinInt64

// isLate, observe, and watermark implement the watermark tracker over
// one atomic so the sharded add path reads it without any lock
// (matching stream.WatermarkTracker semantics: watermark = max event
// time − lateness).
func (st *queryState) isLate(t time.Time) bool {
	m := st.wmMax.Load()
	return m != wmUnseen && t.Before(time.Unix(0, m).Add(-st.lateness))
}

// observe reports whether the observation advanced the watermark; only
// an advance can close a window, so non-advancing callers skip the
// serialized fire path entirely.
func (st *queryState) observe(t time.Time) bool {
	n := t.UnixNano()
	for {
		m := st.wmMax.Load()
		if m != wmUnseen && n <= m {
			return false
		}
		if st.wmMax.CompareAndSwap(m, n) {
			return true
		}
	}
}

func (st *queryState) watermark() time.Time {
	m := st.wmMax.Load()
	if m == wmUnseen {
		return time.Time{}
	}
	return time.Unix(0, m).Add(-st.lateness)
}

// openWindowFor returns the accumulating state for w, creating it if
// needed. It returns nil when w already closed (its end is behind the
// watermark), so a racing late answer can never resurrect a fired
// window.
func (a *Aggregator) openWindowFor(st *queryState, w stream.Window) *openWindow {
	key := w.Start.UnixNano()
	st.winMu.RLock()
	ow := st.windows[key]
	st.winMu.RUnlock()
	if ow != nil {
		return ow
	}
	st.winMu.Lock()
	defer st.winMu.Unlock()
	if ow := st.windows[key]; ow != nil {
		return ow
	}
	if !w.End.After(st.watermark()) {
		return nil
	}
	acc, err := answer.NewShardedAccumulator(st.nbuckets, len(a.shards))
	if err != nil {
		return nil
	}
	ow = &openWindow{window: w, acc: acc}
	st.windows[key] = ow
	return ow
}

// fireLocked closes every window of one query behind its watermark (or
// all windows when flush is set), earliest first, and estimates each.
// Caller holds st.fireMu.
func (a *Aggregator) fireLocked(st *queryState, flush bool) ([]Result, error) {
	wm := st.watermark()
	st.winMu.Lock()
	var closing []*openWindow
	for key, ow := range st.windows {
		if flush || !ow.window.End.After(wm) {
			closing = append(closing, ow)
			delete(st.windows, key)
		}
	}
	st.winMu.Unlock()
	if len(closing) == 0 {
		return nil, nil
	}
	sort.Slice(closing, func(i, j int) bool {
		return closing[i].window.Start.Before(closing[j].window.Start)
	})
	tr := a.tracer.Load()
	rec := a.cards.Load()
	var out []Result
	for _, ow := range closing {
		var t0 time.Time
		if tr != nil || rec != nil {
			t0 = time.Now()
		}
		// Close-and-merge: an add racing this fire either lands before
		// its shard is folded in or is refused and counted dropped —
		// never silently lost.
		acc, err := ow.acc.CloseAndMerge()
		if err != nil {
			return nil, err
		}
		res, err := a.estimate(st, ow.window, acc)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
		if tr != nil {
			tr.RecordFire(telemetry.FireSpan{
				Epoch:       tr.Epoch(),
				Query:       st.qname,
				WindowStart: ow.window.Start.UnixNano(),
				WindowEnd:   ow.window.End.UnixNano(),
				Responses:   int64(res.Responses),
				Lag:         wm.Sub(ow.window.End),
				Dur:         time.Since(t0),
			})
		}
		start := ow.window.Start.UnixNano()
		if ft := st.firedThrough.Load(); ft == wmUnseen || start > ft {
			st.firedThrough.Store(start)
		}
		if rec != nil {
			a.emitCard(rec, st, res, time.Since(t0))
		}
	}
	if rec != nil {
		// Prune late attributions for windows at or behind the fire
		// horizon — their cards are out, so the entries would only leak.
		if ft := st.firedThrough.Load(); ft != wmUnseen {
			st.lateMu.Lock()
			for k := range st.lateByWin {
				if k <= ft {
					delete(st.lateByWin, k)
				}
			}
			st.lateMu.Unlock()
		}
	}
	return out, nil
}

// emitCard assembles the provenance result card for one fired window
// and hands it to the recorder. Runs under fireMu at fire cadence; the
// recorder fills in stamp-derived latency and stage legs and performs
// its own exactly-once dedup against the card log.
func (a *Aggregator) emitCard(rec *lineage.Recorder, st *queryState, res Result, dur time.Duration) {
	start, end := res.Window.Start.UnixNano(), res.Window.End.UnixNano()
	if below := st.cardsBelow.Load(); below != wmUnseen && start <= below {
		return
	}
	params := st.params.Load()
	eps, err := params.EpsilonZK()
	if err != nil {
		eps = -1 // params were validated at registration; defensive only
	}
	width := RelativeWidth(res)
	st.lateMu.Lock()
	late := st.lateByWin[start]
	delete(st.lateByWin, start)
	st.lateMu.Unlock()
	c := lineage.Card{
		Query:       st.qname,
		WindowStart: start,
		WindowEnd:   end,
		Responses:   res.Responses,
		Population:  res.Population,
		Fraction:    lineage.JSONFloat(params.S),
		Shed:        lineage.JSONFloat(res.Shed),
		CIWidth:     lineage.JSONFloat(width),
		EpsilonZK:   lineage.JSONFloat(eps),
		Late:        late,
		// Duplicates/Malformed are aggregator-cumulative snapshots at
		// fire time (per-window attribution is impossible: a duplicate
		// share or undecodable message reveals no window). Zero in clean
		// runs; a nonzero value flags *some* window at or before this one.
		Duplicates: a.duplicates.Load(),
		Malformed:  a.malformed.Load(),
		FiredAtNs:  time.Now().UnixNano(),
		FireDurNs:  int64(dur),
	}
	if res.Population > 0 {
		c.Realized = lineage.JSONFloat(float64(res.Responses) / float64(res.Population))
	}
	if first, last, ok := lineage.EpochRange(a.cfg.Origin.UnixNano(), int64(st.q.Frequency), start, end); ok {
		c.EpochFirst, c.EpochLast = first, last
	}
	rec.EmitCard(c)
}

// AdvanceTo moves every query's watermark forward (e.g. on an epoch
// timer) and returns any windows that close, ordered by window start
// with registration order breaking ties; it also sweeps stale partial
// joins.
func (a *Aggregator) AdvanceTo(t time.Time) ([]Result, error) {
	tbl := a.states.Load()
	cutoff := t.Add(-tbl.maxWindow)
	for i := range a.shards {
		js := &a.shards[i]
		js.mu.Lock()
		js.joiner.Sweep(cutoff)
		js.mu.Unlock()
	}
	var out []Result
	for _, st := range tbl.ordered {
		st.fireMu.Lock()
		st.observe(t)
		res, err := a.fireLocked(st, false)
		st.fireMu.Unlock()
		if err != nil {
			return out, err
		}
		out = append(out, res...)
	}
	SortResults(out, tbl.orderOf)
	return out, nil
}

// Flush closes all open windows of every query at end of stream,
// ordered by window start with registration order breaking ties.
func (a *Aggregator) Flush() ([]Result, error) {
	tbl := a.states.Load()
	var out []Result
	for _, st := range tbl.ordered {
		st.fireMu.Lock()
		res, err := a.fireLocked(st, true)
		st.fireMu.Unlock()
		if err != nil {
			return out, err
		}
		out = append(out, res...)
	}
	SortResults(out, tbl.orderOf)
	return out, nil
}

// orderOf maps a query ID to its registration index (unknown queries
// sort last, by ID string).
func (t *stateTable) orderOf(id query.ID) int {
	if st := t.byWire[id.Uint64()]; st != nil && st.q.QID == id {
		return st.ord
	}
	return int(^uint(0) >> 1)
}

// SortResults orders results by window start, breaking ties with the
// query order function (nil falls back to the ID's textual order) —
// the canonical deterministic result order every drain path sorts
// into.
func SortResults(res []Result, order func(query.ID) int) {
	sort.SliceStable(res, func(i, j int) bool {
		if !res[i].Window.Start.Equal(res[j].Window.Start) {
			return res[i].Window.Start.Before(res[j].Window.Start)
		}
		if res[i].Query == res[j].Query {
			return false
		}
		if order != nil {
			oi, oj := order(res[i].Query), order(res[j].Query)
			if oi != oj {
				return oi < oj
			}
		}
		return res[i].Query.String() < res[j].Query.String()
	})
}

// QueryOrder returns the aggregator's registration-order function for
// SortResults, so external drains sort fired windows exactly like
// Flush/AdvanceTo do.
func (a *Aggregator) QueryOrder() func(query.ID) int {
	return a.states.Load().orderOf
}

// ByQuery splits a merged result stream into per-query streams,
// preserving order.
func ByQuery(results []Result) map[query.ID][]Result {
	out := make(map[query.ID][]Result)
	for _, r := range results {
		out[r.Query] = append(out[r.Query], r)
	}
	return out
}

// Decoded returns the number of successfully decoded answers across all
// queries (including since-removed ones).
func (a *Aggregator) Decoded() int64 {
	n := a.removedDecoded.Load()
	for _, st := range a.states.Load().ordered {
		n += st.decoded.Load()
	}
	return n
}

// Malformed returns the number of joined messages that failed
// decryption or decoding (malicious or corrupt clients).
func (a *Aggregator) Malformed() int64 { return a.malformed.Load() }

// Duplicates returns the number of replayed shares rejected by the
// joiner.
func (a *Aggregator) Duplicates() int64 { return a.duplicates.Load() }

// Dropped returns the number of answers discarded for arriving behind
// their query's watermark (including since-removed queries').
func (a *Aggregator) Dropped() int64 {
	n := a.removedLate.Load()
	for _, st := range a.states.Load().ordered {
		n += st.dropped.Load()
	}
	return n
}

// Stats returns a snapshot of the aggregator's message accounting,
// including the per-shard demux drop counters.
func (a *Aggregator) Stats() Stats {
	tbl := a.states.Load()
	s := Stats{
		Decoded:    a.removedDecoded.Load(),
		Malformed:  a.malformed.Load(),
		Duplicates: a.duplicates.Load(),
		Late:       a.removedLate.Load(),
		Queries:    len(tbl.ordered),
	}
	for _, st := range tbl.ordered {
		s.Decoded += st.decoded.Load()
		s.Late += st.dropped.Load()
	}
	for i := range a.shards {
		js := &a.shards[i]
		js.mu.Lock()
		s.UnknownQuery += js.unknownQID
		s.LengthMismatch += js.badLength
		js.mu.Unlock()
	}
	return s
}

// PendingJoins returns the number of messages waiting for shares across
// all shards.
func (a *Aggregator) PendingJoins() int {
	n := 0
	for i := range a.shards {
		js := &a.shards[i]
		js.mu.Lock()
		n += js.joiner.PendingCount()
		js.mu.Unlock()
	}
	return n
}

// OpenWindows returns the number of windows still accumulating across
// all queries.
func (a *Aggregator) OpenWindows() int {
	n := 0
	for _, st := range a.states.Load().ordered {
		st.winMu.RLock()
		n += len(st.windows)
		st.winMu.RUnlock()
	}
	return n
}

// estimate turns a window's accumulated randomized answers into the
// paper's queryResult ± errorBound (§3.2.4). The SRS population is
// measured in answer slots: every client produces one answer per epoch,
// so a window spanning k epochs draws from U×k potential answers.
func (a *Aggregator) estimate(st *queryState, w stream.Window, acc *answer.Accumulator) (Result, error) {
	epochs := int(st.q.Window / st.q.Frequency)
	if epochs < 1 {
		epochs = 1
	}
	return a.estimateWithPopulation(st, w, acc, a.cfg.Population*epochs)
}

func (a *Aggregator) estimateWithPopulation(st *queryState, w stream.Window, acc *answer.Accumulator, effPopulation int) (Result, error) {
	n := acc.N()
	if effPopulation < n {
		// More answers than slots (e.g. replayed epochs): treat the
		// observed set as the whole population.
		effPopulation = n
	}
	res := Result{
		Query:      st.q.QID,
		Window:     w,
		Responses:  n,
		Population: effPopulation,
		Inverted:   st.q.Inverted,
		Shed:       st.loadShed(),
	}
	for i, label := range st.q.Buckets.Labels() {
		be := BucketEstimate{Label: label, ObservedYes: acc.Yes(i)}
		if n == 0 {
			be.Estimate = stats.ConfidenceInterval{Confidence: st.confidence, Margin: math.Inf(1)}
			res.Buckets = append(res.Buckets, be)
			continue
		}
		// Randomized-response correction (Eq. 5), inverted when the
		// analyst flipped the query (§3.3.2). One atomic params load per
		// bucket keeps the read coherent against a concurrent update.
		rrParams := st.params.Load().RR
		var truthful float64
		var err error
		if st.q.Inverted {
			truthful, err = rr.EstimateNo(rrParams, acc.Yes(i), n)
		} else {
			truthful, err = rr.EstimateYes(rrParams, acc.Yes(i), n)
		}
		if err != nil {
			return Result{}, err
		}
		truthful = clamp(truthful, 0, float64(n))
		be.Truthful = truthful

		// Sampling scale-up and margin (Eq. 2–4) over the corrected
		// window counts.
		moments, err := sampling.BinomialMoments(int(math.Round(truthful)), n)
		if err != nil {
			return Result{}, err
		}
		srs, err := sampling.EstimateSumFromMoments(moments, effPopulation, st.confidence)
		if err != nil {
			return Result{}, err
		}
		// Randomization margin: simulated accuracy loss at this bucket's
		// truthful fraction (the paper's micro-benchmark method).
		rrLoss, err := a.rrLoss(st, truthful/float64(n), n)
		if err != nil {
			return Result{}, err
		}
		be.Estimate = stats.ConfidenceInterval{
			Estimate:   srs.Sum,
			Margin:     srs.Margin + rrLoss*srs.Sum,
			Confidence: st.confidence,
		}
		res.Buckets = append(res.Buckets, be)
	}
	return res, nil
}

// rrLoss estimates the randomized-response accuracy loss at a truthful
// fraction via simulation, memoized on the fraction percent.
func (a *Aggregator) rrLoss(st *queryState, fraction float64, n int) (float64, error) {
	if fraction <= 0 {
		return 0, nil
	}
	pct := int(math.Round(fraction * 100))
	if pct == 0 {
		pct = 1
	}
	st.estMu.Lock()
	defer st.estMu.Unlock()
	if loss, ok := st.rrLossCache[pct]; ok {
		return loss, nil
	}
	simN := n
	if simN > 10000 {
		simN = 10000
	}
	if simN < 100 {
		simN = 100
	}
	params := st.params.Load().RR
	frac := float64(pct) / 100
	if st.q.Inverted {
		// The inverted query estimates the "No" side: simulate its loss.
		params = params.Invert()
	}
	loss, err := rr.SimulateAccuracyLoss(params, frac, simN, a.cfg.RRLossRounds, st.rng)
	if err != nil {
		return 0, err
	}
	st.rrLossCache[pct] = loss
	st.estLog = append(st.estLog, estEvent{
		pct: pct, params: params, frac: frac,
		simN: simN, rounds: a.cfg.RRLossRounds, loss: loss,
	})
	return loss, nil
}

// RelativeWidth is the feedback signal for the budget controller: the
// mean over buckets of margin/estimate, skipping empty buckets.
func RelativeWidth(res Result) float64 {
	var sum float64
	var k int
	for _, b := range res.Buckets {
		if b.Estimate.Estimate <= 0 || math.IsInf(b.Estimate.Margin, 1) {
			continue
		}
		sum += b.Estimate.Margin / b.Estimate.Estimate
		k++
	}
	if k == 0 {
		return math.Inf(1)
	}
	return sum / float64(k)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
