// Package aggregator implements PrivApprox's aggregator (paper §3.2.4,
// §5): it joins the encrypted answer stream with the key streams by
// message identifier, XOR-decrypts, decodes the randomized answers, runs
// sliding-window aggregation, and produces per-bucket query results with
// a confidence interval combining the two independent error sources —
// sampling (Eq. 2–4) and randomized response (estimated empirically, as
// in the paper's "experimental method").
package aggregator

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/sampling"
	"privapprox/internal/stats"
	"privapprox/internal/stream"
	"privapprox/internal/xorcrypt"
)

// ErrConfig reports an invalid aggregator configuration.
var ErrConfig = errors.New("aggregator: invalid config")

// Config assembles an aggregator for one query.
type Config struct {
	Query      *query.Query
	Params     budget.Params
	Population int // U: number of subscribed clients
	Proxies    int // n: shares per message
	// Origin anchors epoch numbers to event time: event time of epoch e
	// is Origin + e×Frequency.
	Origin time.Time
	// Confidence for the error bound; defaults to 0.95.
	Confidence float64
	// Lateness tolerated before records are dropped; defaults to one
	// slide interval.
	Lateness time.Duration
	// RRLossRounds is the number of micro-benchmark rounds used to
	// estimate the randomized-response accuracy loss; defaults to 5.
	RRLossRounds int
	// Seed makes the RR-loss micro-benchmark deterministic; 0 draws a
	// random seed.
	Seed int64
	// Shards splits the share-join map and the per-window accumulators
	// into independently locked shards keyed by message-ID hash, so
	// SubmitShare from concurrent drain goroutines scales instead of
	// serializing on one lock. Defaults to GOMAXPROCS. Results and
	// counters are identical for every shard count: per-bucket counts
	// are integer sums, so the merged window state does not depend on
	// how messages were distributed over shards.
	Shards int
	// OnDecoded, when set, receives every decoded answer message (its
	// wire bytes and event time) — the hook the historical store uses
	// (§3.3.1). It may be invoked concurrently from multiple
	// SubmitShare goroutines, so the callback must be safe for
	// concurrent use, and the order of invocations within an epoch is
	// scheduling-dependent (a reproducible store sequence requires a
	// single submitter).
	OnDecoded func(raw []byte, eventTime time.Time)
}

// BucketEstimate is the query result for one answer bucket.
type BucketEstimate struct {
	Label string
	// ObservedYes is Ry: raw randomized "Yes" responses in the window.
	ObservedYes int
	// Truthful is the RR-corrected count among the window's responses
	// (Ey, or En for inverted queries), clamped to [0, N].
	Truthful float64
	// Estimate is the population-scaled count with the combined
	// sampling + randomization margin.
	Estimate stats.ConfidenceInterval
}

// Result is one fired window.
type Result struct {
	Window     stream.Window
	Responses  int // N: decoded answers in the window
	Population int // U
	Inverted   bool
	Buckets    []BucketEstimate
}

// Aggregator processes share streams for a single query. It is safe
// for concurrent use: shares from any number of drain goroutines may be
// submitted at once. The hot path — join, decrypt, decode, window
// accumulation — is sharded by message-ID hash with per-shard locks;
// only watermark advancement and window firing serialize, which keeps
// the sequence of fired results (and the rng the estimator consumes)
// deterministic under a fixed seed regardless of submission
// interleaving within an epoch.
type Aggregator struct {
	cfg      Config
	assigner *stream.SlidingAssigner
	shards   []joinShard
	qidWire  uint64

	// winMu guards the registry of open windows; accumulation inside a
	// window goes through the sharded accumulator, not this lock.
	winMu   sync.RWMutex
	windows map[int64]*openWindow // keyed by window start UnixNano

	// fireMu serializes window firing so each window fires exactly once
	// and results come out in global window-start order. Lock order:
	// fireMu before winMu.
	fireMu sync.Mutex
	// wmMax is the maximum observed event time as UnixNano (wmUnseen
	// before any event); the watermark is wmMax − Lateness. Kept atomic
	// so the sharded add path never serializes on watermark reads.
	wmMax   atomic.Int64
	dropped atomic.Int64

	// estMu guards the estimator's rng and memoized RR-loss cache
	// (estimates normally run under fireMu; BatchAnalyze calls the
	// estimator directly).
	estMu       sync.Mutex
	rng         *rand.Rand
	rrLossCache map[int]float64 // yes-fraction percent → simulated loss

	malformed  atomic.Int64
	duplicates atomic.Int64
	decoded    atomic.Int64
}

// joinShard is one lock's worth of share-join state plus the scratch
// buffers the join → decrypt → decode tail reuses across messages. All
// scratch is touched only under mu (SubmitShare holds the shard lock
// through ingest), so buffers never alias across concurrent messages;
// the struct is larger than a cache line, so adjacent shard locks do
// not false-share.
type joinShard struct {
	mu     sync.Mutex
	joiner *stream.KeyedShareJoiner[xorcrypt.MID]
	plain  []byte           // reusable XOR-joined plaintext
	vec    answer.BitVector // reusable zero-copy decode view
	msg    answer.Message
	wins   []stream.Window // reusable window-assignment scratch
	_      [8]byte         // pad to two cache lines (the size check pins this)
}

// openWindow is one window still accumulating answers.
type openWindow struct {
	window stream.Window
	acc    *answer.ShardedAccumulator
}

// New validates the configuration and builds the aggregator.
func New(cfg Config) (*Aggregator, error) {
	if cfg.Query == nil {
		return nil, fmt.Errorf("%w: nil query", ErrConfig)
	}
	if err := cfg.Query.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Population <= 0 {
		return nil, fmt.Errorf("%w: population %d", ErrConfig, cfg.Population)
	}
	if cfg.Proxies < 2 {
		return nil, fmt.Errorf("%w: %d proxies", ErrConfig, cfg.Proxies)
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.95
	}
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		return nil, fmt.Errorf("%w: confidence %v", ErrConfig, cfg.Confidence)
	}
	if cfg.Lateness == 0 {
		cfg.Lateness = cfg.Query.Slide
	}
	if cfg.RRLossRounds == 0 {
		cfg.RRLossRounds = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = rand.Int63()
	}
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("%w: %d shards", ErrConfig, cfg.Shards)
	}
	assigner, err := stream.NewSlidingAssignerAt(cfg.Query.Window, cfg.Query.Slide, cfg.Origin)
	if err != nil {
		return nil, err
	}
	shards := make([]joinShard, cfg.Shards)
	for i := range shards {
		joiner, err := stream.NewKeyedShareJoiner[xorcrypt.MID](cfg.Proxies, cfg.Query.Window)
		if err != nil {
			return nil, err
		}
		shards[i].joiner = joiner
	}
	a := &Aggregator{
		cfg:         cfg,
		assigner:    assigner,
		shards:      shards,
		windows:     make(map[int64]*openWindow),
		qidWire:     cfg.Query.QID.Uint64(),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		rrLossCache: make(map[int]float64),
	}
	a.wmMax.Store(wmUnseen)
	return a, nil
}

// Shards returns the configured shard count.
func (a *Aggregator) Shards() int { return len(a.shards) }

// shardOf routes a message ID to its shard; all shares of one message
// land on the same shard, so each join group lives under exactly one
// lock. FNV-1a is inlined — hash.Hash32 would allocate per share on
// the hot path.
func (a *Aggregator) shardOf(mid xorcrypt.MID) int {
	if len(a.shards) == 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range mid {
		h ^= uint32(b)
		h *= prime32
	}
	return int(h % uint32(len(a.shards)))
}

// SubmitShare folds in one share from proxy stream source (0 ≤ source <
// Proxies). When the share completes a message, the message is
// decrypted, decoded, and assigned to windows; any windows closed by
// the advancing watermark are returned as results.
//
// SubmitShare takes ownership of share.Payload: the joiner retains it
// until the message's remaining shares arrive (or a sweep drops the
// group), so the caller must not reuse the payload's backing bytes
// after submitting. Consumers polling the pub/sub transports always
// hand over freshly copied record values, so the pipeline satisfies
// this for free.
func (a *Aggregator) SubmitShare(share xorcrypt.Share, source int, arrival time.Time) ([]Result, error) {
	shard := a.shardOf(share.MID)
	js := &a.shards[shard]
	js.mu.Lock()
	res, err := a.submitLocked(js, share, source, arrival, shard)
	js.mu.Unlock()
	return res, err
}

// submitLocked runs the join → decrypt → decode → accumulate tail under
// the shard lock so the shard-owned scratch (pooled join group, joined
// plaintext, decode view, window slice) is reused across messages
// without ever being shared between goroutines. The caller holds js.mu.
//
// Lock order: js.mu may be taken before fireMu (via ingest); nothing
// acquires a shard lock while holding fireMu or winMu, so the order is
// acyclic.
func (a *Aggregator) submitLocked(js *joinShard, share xorcrypt.Share, source int, arrival time.Time, shard int) ([]Result, error) {
	joined, err := js.joiner.Add(share.MID, source, share.Payload, arrival)
	if err != nil {
		if errors.Is(err, stream.ErrDuplicate) {
			a.duplicates.Add(1)
			return nil, nil
		}
		return nil, err
	}
	if joined == nil {
		return nil, nil
	}
	// The group's payloads are consumed by the XOR join right here, so
	// the group can go straight back to the joiner's pool.
	plain, err := xorcrypt.JoinPayloadsInto(js.plain[:0], joined.Payloads)
	js.joiner.Recycle(joined)
	if plain != nil {
		js.plain = plain
	}
	if err != nil {
		a.malformed.Add(1)
		return nil, nil
	}
	if err := js.msg.UnmarshalBinaryView(plain, &js.vec); err != nil {
		a.malformed.Add(1)
		return nil, nil
	}
	msg := &js.msg
	if msg.QueryID != a.qidWire || msg.Answer.Len() != len(a.cfg.Query.Buckets) {
		a.malformed.Add(1)
		return nil, nil
	}
	a.decoded.Add(1)
	eventTime := a.cfg.Origin.Add(time.Duration(msg.Epoch) * a.cfg.Query.Frequency)
	if a.cfg.OnDecoded != nil {
		// Ownership contract: plain is shard scratch, valid only for
		// the duration of the callback — the hook must copy what it
		// keeps (histstore.Append serializes into its own buffer).
		a.cfg.OnDecoded(plain, eventTime)
	}
	return a.ingest(js, eventTime, msg.Answer, shard)
}

// ingest assigns one decoded answer to its windows and advances the
// watermark, firing any windows the advance closes. Only an observation
// that actually moves the watermark takes the fire path — within an
// epoch all event times are equal, so the drain goroutines run the
// sharded adds without ever touching fireMu.
//
// ingest/isLate/observe/fireLocked intentionally fork the windowing
// semantics of stream.WindowedOp + stream.WatermarkTracker (watermark =
// max event time − lateness, strict-Before late check, fire on window
// End ≤ watermark, start-ordered results) into this sharded,
// concurrency-safe form; the stream package keeps the generic
// single-threaded operator. A semantic change to either must be made in
// both.
func (a *Aggregator) ingest(js *joinShard, eventTime time.Time, vec *answer.BitVector, shard int) ([]Result, error) {
	if a.isLate(eventTime) {
		// A late event can never advance the watermark, so nothing can
		// fire on its account.
		a.dropped.Add(1)
		return nil, nil
	}

	refused := false
	js.wins = a.assigner.AppendWindowsFor(js.wins[:0], eventTime)
	for _, w := range js.wins {
		ow := a.openWindowFor(w)
		if ow == nil {
			// The window fired while we raced to it; the answer is by
			// definition late there.
			refused = true
			continue
		}
		if err := ow.acc.Add(shard, vec); err != nil {
			// ErrClosed: the window fired between our lookup and the
			// add — late, same as above. (Size mismatches were filtered
			// at decode time.)
			if errors.Is(err, answer.ErrClosed) {
				refused = true
			}
		}
	}
	if refused {
		// Count per answer, not per window: an answer racing a fire may
		// be refused by several of its sliding windows (and in rare
		// interleavings still land in others), but it is one discarded
		// answer.
		a.dropped.Add(1)
	}

	if !a.observe(eventTime) {
		return nil, nil
	}
	a.fireMu.Lock()
	res, err := a.fireLocked(false)
	a.fireMu.Unlock()
	return res, err
}

// wmUnseen marks "no event observed yet"; it cannot collide with a
// real UnixNano (event times near the int64 minimum are out of range
// for the window arithmetic anyway).
const wmUnseen = math.MinInt64

// isLate, observe, and watermark implement the watermark tracker over
// one atomic so the sharded add path reads it without any lock
// (matching stream.WatermarkTracker semantics: watermark = max event
// time − lateness).
func (a *Aggregator) isLate(t time.Time) bool {
	m := a.wmMax.Load()
	return m != wmUnseen && t.Before(time.Unix(0, m).Add(-a.cfg.Lateness))
}

// observe reports whether the observation advanced the watermark; only
// an advance can close a window, so non-advancing callers skip the
// serialized fire path entirely.
func (a *Aggregator) observe(t time.Time) bool {
	n := t.UnixNano()
	for {
		m := a.wmMax.Load()
		if m != wmUnseen && n <= m {
			return false
		}
		if a.wmMax.CompareAndSwap(m, n) {
			return true
		}
	}
}

func (a *Aggregator) watermark() time.Time {
	m := a.wmMax.Load()
	if m == wmUnseen {
		return time.Time{}
	}
	return time.Unix(0, m).Add(-a.cfg.Lateness)
}

// openWindowFor returns the accumulating state for w, creating it if
// needed. It returns nil when w already closed (its end is behind the
// watermark), so a racing late answer can never resurrect a fired
// window.
func (a *Aggregator) openWindowFor(w stream.Window) *openWindow {
	key := w.Start.UnixNano()
	a.winMu.RLock()
	ow := a.windows[key]
	a.winMu.RUnlock()
	if ow != nil {
		return ow
	}
	a.winMu.Lock()
	defer a.winMu.Unlock()
	if ow := a.windows[key]; ow != nil {
		return ow
	}
	if !w.End.After(a.watermark()) {
		return nil
	}
	acc, err := answer.NewShardedAccumulator(len(a.cfg.Query.Buckets), len(a.shards))
	if err != nil {
		return nil
	}
	ow = &openWindow{window: w, acc: acc}
	a.windows[key] = ow
	return ow
}

// fireLocked closes every window behind the watermark (or all windows
// when flush is set), earliest first, and estimates each. Caller holds
// fireMu.
func (a *Aggregator) fireLocked(flush bool) ([]Result, error) {
	wm := a.watermark()
	a.winMu.Lock()
	var closing []*openWindow
	for key, ow := range a.windows {
		if flush || !ow.window.End.After(wm) {
			closing = append(closing, ow)
			delete(a.windows, key)
		}
	}
	a.winMu.Unlock()
	if len(closing) == 0 {
		return nil, nil
	}
	sort.Slice(closing, func(i, j int) bool {
		return closing[i].window.Start.Before(closing[j].window.Start)
	})
	var out []Result
	for _, ow := range closing {
		// Close-and-merge: an add racing this fire either lands before
		// its shard is folded in or is refused and counted dropped —
		// never silently lost.
		acc, err := ow.acc.CloseAndMerge()
		if err != nil {
			return nil, err
		}
		res, err := a.estimate(ow.window, acc)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AdvanceTo moves the watermark forward (e.g. on an epoch timer) and
// returns any windows that close; it also sweeps stale partial joins.
func (a *Aggregator) AdvanceTo(t time.Time) ([]Result, error) {
	cutoff := t.Add(-a.cfg.Query.Window)
	for i := range a.shards {
		js := &a.shards[i]
		js.mu.Lock()
		js.joiner.Sweep(cutoff)
		js.mu.Unlock()
	}
	a.fireMu.Lock()
	defer a.fireMu.Unlock()
	a.observe(t)
	return a.fireLocked(false)
}

// Flush closes all open windows at end of stream.
func (a *Aggregator) Flush() ([]Result, error) {
	a.fireMu.Lock()
	defer a.fireMu.Unlock()
	return a.fireLocked(true)
}

// Decoded returns the number of successfully decoded answers.
func (a *Aggregator) Decoded() int64 { return a.decoded.Load() }

// Malformed returns the number of joined messages that failed
// decryption or decoding (malicious or corrupt clients).
func (a *Aggregator) Malformed() int64 { return a.malformed.Load() }

// Duplicates returns the number of replayed shares rejected by the
// joiner.
func (a *Aggregator) Duplicates() int64 { return a.duplicates.Load() }

// Dropped returns the number of answers discarded for arriving behind
// the watermark.
func (a *Aggregator) Dropped() int64 { return a.dropped.Load() }

// PendingJoins returns the number of messages waiting for shares across
// all shards.
func (a *Aggregator) PendingJoins() int {
	n := 0
	for i := range a.shards {
		js := &a.shards[i]
		js.mu.Lock()
		n += js.joiner.PendingCount()
		js.mu.Unlock()
	}
	return n
}

// OpenWindows returns the number of windows still accumulating.
func (a *Aggregator) OpenWindows() int {
	a.winMu.RLock()
	defer a.winMu.RUnlock()
	return len(a.windows)
}

// estimate turns a window's accumulated randomized answers into the
// paper's queryResult ± errorBound (§3.2.4). The SRS population is
// measured in answer slots: every client produces one answer per epoch,
// so a window spanning k epochs draws from U×k potential answers.
func (a *Aggregator) estimate(w stream.Window, acc *answer.Accumulator) (Result, error) {
	epochs := int(a.cfg.Query.Window / a.cfg.Query.Frequency)
	if epochs < 1 {
		epochs = 1
	}
	return a.estimateWithPopulation(w, acc, a.cfg.Population*epochs)
}

func (a *Aggregator) estimateWithPopulation(w stream.Window, acc *answer.Accumulator, effPopulation int) (Result, error) {
	n := acc.N()
	if effPopulation < n {
		// More answers than slots (e.g. replayed epochs): treat the
		// observed set as the whole population.
		effPopulation = n
	}
	res := Result{
		Window:     w,
		Responses:  n,
		Population: effPopulation,
		Inverted:   a.cfg.Query.Inverted,
	}
	for i, label := range a.cfg.Query.Buckets.Labels() {
		be := BucketEstimate{Label: label, ObservedYes: acc.Yes(i)}
		if n == 0 {
			be.Estimate = stats.ConfidenceInterval{Confidence: a.cfg.Confidence, Margin: math.Inf(1)}
			res.Buckets = append(res.Buckets, be)
			continue
		}
		// Randomized-response correction (Eq. 5), inverted when the
		// analyst flipped the query (§3.3.2).
		var truthful float64
		var err error
		if a.cfg.Query.Inverted {
			truthful, err = rr.EstimateNo(a.cfg.Params.RR, acc.Yes(i), n)
		} else {
			truthful, err = rr.EstimateYes(a.cfg.Params.RR, acc.Yes(i), n)
		}
		if err != nil {
			return Result{}, err
		}
		truthful = clamp(truthful, 0, float64(n))
		be.Truthful = truthful

		// Sampling scale-up and margin (Eq. 2–4) over the corrected
		// window counts.
		moments, err := sampling.BinomialMoments(int(math.Round(truthful)), n)
		if err != nil {
			return Result{}, err
		}
		srs, err := sampling.EstimateSumFromMoments(moments, effPopulation, a.cfg.Confidence)
		if err != nil {
			return Result{}, err
		}
		// Randomization margin: simulated accuracy loss at this bucket's
		// truthful fraction (the paper's micro-benchmark method).
		rrLoss, err := a.rrLoss(truthful/float64(n), n)
		if err != nil {
			return Result{}, err
		}
		be.Estimate = stats.ConfidenceInterval{
			Estimate:   srs.Sum,
			Margin:     srs.Margin + rrLoss*srs.Sum,
			Confidence: a.cfg.Confidence,
		}
		res.Buckets = append(res.Buckets, be)
	}
	return res, nil
}

// rrLoss estimates the randomized-response accuracy loss at a truthful
// fraction via simulation, memoized on the fraction percent.
func (a *Aggregator) rrLoss(fraction float64, n int) (float64, error) {
	if fraction <= 0 {
		return 0, nil
	}
	pct := int(math.Round(fraction * 100))
	if pct == 0 {
		pct = 1
	}
	a.estMu.Lock()
	defer a.estMu.Unlock()
	if loss, ok := a.rrLossCache[pct]; ok {
		return loss, nil
	}
	simN := n
	if simN > 10000 {
		simN = 10000
	}
	if simN < 100 {
		simN = 100
	}
	params := a.cfg.Params.RR
	frac := float64(pct) / 100
	if a.cfg.Query.Inverted {
		// The inverted query estimates the "No" side: simulate its loss.
		params = params.Invert()
	}
	loss, err := rr.SimulateAccuracyLoss(params, frac, simN, a.cfg.RRLossRounds, a.rng)
	if err != nil {
		return 0, err
	}
	a.rrLossCache[pct] = loss
	return loss, nil
}

// RelativeWidth is the feedback signal for the budget controller: the
// mean over buckets of margin/estimate, skipping empty buckets.
func RelativeWidth(res Result) float64 {
	var sum float64
	var k int
	for _, b := range res.Buckets {
		if b.Estimate.Estimate <= 0 || math.IsInf(b.Estimate.Margin, 1) {
			continue
		}
		sum += b.Estimate.Margin / b.Estimate.Estimate
		k++
	}
	if k == 0 {
		return math.Inf(1)
	}
	return sum / float64(k)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
