package aggregator

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/xorcrypt"
)

// slidingTestQuery fires windows while epochs are still streaming in:
// 1s epochs over 4s windows sliding every 2s.
func slidingTestQuery(t *testing.T, nbuckets int) *query.Query {
	t.Helper()
	buckets, err := query.UniformRanges(0, float64(nbuckets), nbuckets, false)
	if err != nil {
		t.Fatal(err)
	}
	return &query.Query{
		QID:       query.ID{Analyst: "a", Serial: 1},
		SQL:       "SELECT v FROM t",
		Buckets:   buckets,
		Frequency: time.Second,
		Window:    4 * time.Second,
		Slide:     2 * time.Second,
	}
}

// submission is one share en route to the aggregator.
type submission struct {
	share xorcrypt.Share
	src   int
}

// buildEpochTraffic pre-splits one epoch's worth of traffic: good
// answers, wrong-query and wrong-width malformed messages, undecryptable
// share pairs, and replayed duplicates. Shares are built sequentially
// (the splitter is not concurrency-safe) and submitted later in any
// order or interleaving.
func buildEpochTraffic(t *testing.T, q *query.Query, epoch uint64, good, malformed, duplicates int) []submission {
	t.Helper()
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	nbuckets := len(q.Buckets)
	var subs []submission
	split := func(qid uint64, width, bucket int) []xorcrypt.Share {
		vec, err := answer.OneHot(width, bucket%width)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := (&answer.Message{QueryID: qid, Epoch: epoch, Answer: vec}).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		shares, err := splitter.Split(raw)
		if err != nil {
			t.Fatal(err)
		}
		return shares
	}
	for i := 0; i < good; i++ {
		shares := split(q.QID.Uint64(), nbuckets, int(epoch)*31+i)
		for src, sh := range shares {
			subs = append(subs, submission{sh, src})
		}
		if i < duplicates {
			// Replay one share of this message verbatim.
			subs = append(subs, submission{shares[0], 0})
		}
	}
	for i := 0; i < malformed; i++ {
		switch i % 3 {
		case 0: // wrong query ID: joins and decodes, rejected by the filter
			shares := split(q.QID.Uint64()+7, nbuckets, i)
			for src, sh := range shares {
				subs = append(subs, submission{sh, src})
			}
		case 1: // wrong bucket width: decodes, size filter rejects
			shares := split(q.QID.Uint64(), nbuckets+3, i)
			for src, sh := range shares {
				subs = append(subs, submission{sh, src})
			}
		default: // length-mismatched share pair: XOR join itself fails
			shares := split(q.QID.Uint64(), nbuckets, i)
			shares[1].Payload = shares[1].Payload[:len(shares[1].Payload)-1]
			for src, sh := range shares {
				subs = append(subs, submission{sh, src})
			}
		}
	}
	return subs
}

func runTraffic(t *testing.T, a *Aggregator, epochs [][]submission, goroutines int, rng *rand.Rand) []Result {
	t.Helper()
	var (
		mu    sync.Mutex
		fired []Result
	)
	for _, subs := range epochs {
		order := rng.Perm(len(subs))
		if goroutines <= 1 {
			for _, idx := range order {
				sub := subs[idx]
				res, err := a.SubmitShare(sub.share, sub.src, time.Now())
				if err != nil {
					t.Fatal(err)
				}
				fired = append(fired, res...)
			}
			continue
		}
		// All goroutines pound the aggregator with this epoch's shares at
		// once; earlier windows fire mid-stream when the watermark jumps.
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(order); i += goroutines {
					sub := subs[order[i]]
					res, err := a.SubmitShare(sub.share, sub.src, time.Now())
					if err != nil {
						t.Error(err)
						return
					}
					if len(res) > 0 {
						mu.Lock()
						fired = append(fired, res...)
						mu.Unlock()
					}
				}
			}(g)
		}
		wg.Wait()
	}
	final, err := a.Flush()
	if err != nil {
		t.Fatal(err)
	}
	fired = append(fired, final...)
	sort.SliceStable(fired, func(i, j int) bool {
		return fired[i].Window.Start.Before(fired[j].Window.Start)
	})
	return fired
}

// TestShardedAggregatorMatchesSequential is the race-hardening
// equivalence test: many goroutines submit interleaved shares,
// duplicates, and malformed records while windows fire, and the sharded
// aggregator must produce byte-identical results and counters to a
// single-shard aggregator fed the same traffic sequentially.
func TestShardedAggregatorMatchesSequential(t *testing.T) {
	const (
		nbuckets   = 5
		nepochs    = 10
		good       = 40
		malformed  = 6
		duplicates = 5
	)
	q := slidingTestQuery(t, nbuckets)
	epochs := make([][]submission, nepochs)
	for e := range epochs {
		epochs[e] = buildEpochTraffic(t, q, uint64(e), good, malformed, duplicates)
	}
	cfg := Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: good,
		Proxies:    2,
		Origin:     testOrigin,
		Seed:       17,
	}

	cfg.Shards = 1
	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantResults := runTraffic(t, seq, epochs, 1, rand.New(rand.NewSource(23)))

	for _, shards := range []int{1, 4, 16} {
		cfg.Shards = shards
		par, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", par.Shards(), shards)
		}
		got := runTraffic(t, par, epochs, 8, rand.New(rand.NewSource(int64(shards))))

		if par.Decoded() != seq.Decoded() || par.Decoded() != int64(nepochs*good) {
			t.Errorf("shards=%d: decoded = %d, want %d", shards, par.Decoded(), seq.Decoded())
		}
		if par.Malformed() != seq.Malformed() {
			t.Errorf("shards=%d: malformed = %d, want %d", shards, par.Malformed(), seq.Malformed())
		}
		if par.Duplicates() != seq.Duplicates() || par.Duplicates() != int64(nepochs*duplicates) {
			t.Errorf("shards=%d: duplicates = %d, want %d", shards, par.Duplicates(), seq.Duplicates())
		}
		if par.Dropped() != 0 {
			t.Errorf("shards=%d: dropped = %d, want 0", shards, par.Dropped())
		}
		if !reflect.DeepEqual(got, wantResults) {
			t.Errorf("shards=%d: results diverge from sequential run\n got: %+v\nwant: %+v", shards, got, wantResults)
		}
	}
}

// TestShardedPendingJoins checks the pending-count and sweep paths sum
// correctly over shards.
func TestShardedPendingJoins(t *testing.T) {
	q := slidingTestQuery(t, 4)
	cfg := Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: 10,
		Proxies:    2,
		Origin:     testOrigin,
		Seed:       5,
		Shards:     4,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Submit only the first share of 10 messages: all stay pending.
	for i := 0; i < 10; i++ {
		vec, _ := answer.OneHot(4, i%4)
		raw, _ := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
		shares, err := splitter.Split(raw)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.SubmitShare(shares[0], 0, testOrigin); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.PendingJoins(); got != 10 {
		t.Errorf("pending = %d, want 10", got)
	}
	// Sweeping far in the future drops all partial joins in every shard.
	if _, err := a.AdvanceTo(testOrigin.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if got := a.PendingJoins(); got != 0 {
		t.Errorf("pending after sweep = %d, want 0", got)
	}
}
