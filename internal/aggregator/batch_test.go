package aggregator

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/rr"
)

// storedAnswers builds an in-memory AnswerSource of n one-hot messages
// per epoch across the given epochs.
func storedAnswers(t *testing.T, cfg Config, perEpoch int, epochs int, bucketOf func(i int) int) AnswerSource {
	t.Helper()
	type rec struct {
		ts      time.Time
		payload []byte
	}
	var recs []rec
	nb := len(cfg.Query.Buckets)
	for e := 0; e < epochs; e++ {
		for i := 0; i < perEpoch; i++ {
			var vec *answer.BitVector
			var err error
			if b := bucketOf(i); b >= 0 {
				vec, err = answer.OneHot(nb, b)
			} else {
				vec, err = answer.NewBitVector(nb)
			}
			if err != nil {
				t.Fatal(err)
			}
			msg := answer.Message{QueryID: cfg.Query.QID.Uint64(), Epoch: uint64(e), Answer: vec}
			raw, err := msg.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec{ts: EpochTime(cfg, uint64(e)), payload: raw})
		}
	}
	return func(fn func(ts time.Time, payload []byte) error) error {
		for _, r := range recs {
			if err := fn(r.ts, r.payload); err != nil {
				return err
			}
		}
		return nil
	}
}

func batchConfig(t *testing.T, population int) Config {
	t.Helper()
	return Config{
		Query:      testQuery(t, 4),
		Params:     budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}},
		Population: population,
		Proxies:    2,
		Origin:     testOrigin,
		Seed:       13,
	}
}

func TestBatchAnalyzeFullScanExact(t *testing.T) {
	cfg := batchConfig(t, 100)
	src := storedAnswers(t, cfg, 100, 3, func(i int) int { return i % 4 })
	res, err := BatchAnalyze(cfg, src, testOrigin, testOrigin.Add(time.Hour), 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 300 || res.Kept != 300 {
		t.Fatalf("scanned=%d kept=%d", res.Scanned, res.Kept)
	}
	for i, b := range res.Buckets {
		if math.Abs(b.Estimate.Estimate-75) > 1e-9 {
			t.Errorf("bucket %d = %v, want 75", i, b.Estimate.Estimate)
		}
		if b.Estimate.Margin > 1e-9 {
			t.Errorf("bucket %d margin = %v, want 0 at full scan without noise", i, b.Estimate.Margin)
		}
	}
}

func TestBatchAnalyzeTimeRangeFilters(t *testing.T) {
	cfg := batchConfig(t, 50)
	src := storedAnswers(t, cfg, 50, 4, func(i int) int { return 0 })
	// Only epochs 0 and 1 fall in [origin, origin+2×freq).
	to := EpochTime(cfg, 2)
	res, err := BatchAnalyze(cfg, src, testOrigin, to, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 100 {
		t.Errorf("scanned = %d, want 100", res.Scanned)
	}
	// 2 epochs × 50 clients, all bucket 0.
	if math.Abs(res.Buckets[0].Estimate.Estimate-100) > 1e-9 {
		t.Errorf("bucket 0 = %v, want 100", res.Buckets[0].Estimate.Estimate)
	}
}

func TestBatchAnalyzeSecondSamplingUnbiasedAndWider(t *testing.T) {
	cfg := batchConfig(t, 200)
	src := storedAnswers(t, cfg, 200, 2, func(i int) int { return i % 2 })
	full, err := BatchAnalyze(cfg, src, testOrigin, testOrigin.Add(time.Hour), 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := BatchAnalyze(cfg, src, testOrigin, testOrigin.Add(time.Hour), 0.4,
		rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Kept >= sub.Scanned {
		t.Fatalf("second sampling kept %d of %d", sub.Kept, sub.Scanned)
	}
	// Estimate within 20% of the full-scan value, with a wider interval.
	f, s := full.Buckets[0].Estimate, sub.Buckets[0].Estimate
	if math.Abs(s.Estimate-f.Estimate)/f.Estimate > 0.2 {
		t.Errorf("subsampled estimate %v vs full %v", s.Estimate, f.Estimate)
	}
	if s.Margin <= f.Margin {
		t.Errorf("subsampled margin %v not wider than full %v", s.Margin, f.Margin)
	}
}

func TestBatchAnalyzeSkipsForeignAndCorrupt(t *testing.T) {
	cfg := batchConfig(t, 10)
	good := storedAnswers(t, cfg, 10, 1, func(i int) int { return 0 })
	src := func(fn func(ts time.Time, payload []byte) error) error {
		if err := fn(EpochTime(cfg, 0), []byte("garbage")); err != nil {
			return err
		}
		foreign := answer.Message{QueryID: 999, Epoch: 0}
		foreign.Answer, _ = answer.NewBitVector(4)
		raw, _ := foreign.MarshalBinary()
		if err := fn(EpochTime(cfg, 0), raw); err != nil {
			return err
		}
		return good(fn)
	}
	res, err := BatchAnalyze(cfg, src, testOrigin, testOrigin.Add(time.Hour), 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept != 10 {
		t.Errorf("kept = %d, want 10 (garbage and foreign skipped)", res.Kept)
	}
	if res.Scanned != 12 {
		t.Errorf("scanned = %d, want 12", res.Scanned)
	}
}

func TestBatchAnalyzeValidation(t *testing.T) {
	cfg := batchConfig(t, 10)
	src := storedAnswers(t, cfg, 1, 1, func(i int) int { return 0 })
	if _, err := BatchAnalyze(cfg, src, testOrigin, testOrigin.Add(time.Hour), 0, nil); err == nil {
		t.Error("expected error for zero sampling")
	}
	if _, err := BatchAnalyze(cfg, src, testOrigin, testOrigin.Add(time.Hour), 1.5, nil); err == nil {
		t.Error("expected error for sampling > 1")
	}
	bad := cfg
	bad.Population = 0
	if _, err := BatchAnalyze(bad, src, testOrigin, testOrigin.Add(time.Hour), 1, nil); err == nil {
		t.Error("expected config validation to propagate")
	}
}

func TestBatchAnalyzeRandomizedRecovers(t *testing.T) {
	// Store randomized answers and verify the batch estimator reverses
	// the noise: 60% of 4000 stored answers truthfully in bucket 0.
	cfg := batchConfig(t, 4000)
	cfg.Params = budget.Params{S: 1, RR: rr.Params{P: 0.6, Q: 0.6}}
	rng := rand.New(rand.NewSource(8))
	rz, err := rr.NewRandomizer(cfg.Params.RR, rng)
	if err != nil {
		t.Fatal(err)
	}
	nb := len(cfg.Query.Buckets)
	src := func(fn func(ts time.Time, payload []byte) error) error {
		for i := 0; i < 4000; i++ {
			vec, err := answer.NewBitVector(nb)
			if err != nil {
				return err
			}
			truth0 := i < 2400
			vec.Set(0, rz.Respond(truth0))
			vec.Set(1, rz.Respond(!truth0))
			msg := answer.Message{QueryID: cfg.Query.QID.Uint64(), Epoch: 0, Answer: vec}
			raw, err := msg.MarshalBinary()
			if err != nil {
				return err
			}
			if err := fn(EpochTime(cfg, 0), raw); err != nil {
				return err
			}
		}
		return nil
	}
	res, err := BatchAnalyze(cfg, src, testOrigin, testOrigin.Add(time.Hour), 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Buckets[0].Estimate.Estimate
	if math.Abs(got-2400)/2400 > 0.08 {
		t.Errorf("batch RR recovery = %v, want ≈2400", got)
	}
}

func TestEpochTime(t *testing.T) {
	cfg := batchConfig(t, 10)
	if got := EpochTime(cfg, 0); !got.Equal(testOrigin) {
		t.Errorf("epoch 0 = %v", got)
	}
	if got := EpochTime(cfg, 3); !got.Equal(testOrigin.Add(3 * cfg.Query.Frequency)) {
		t.Errorf("epoch 3 = %v", got)
	}
}

func TestEstimateYesForWindow(t *testing.T) {
	params := rr.Params{P: 0.5, Q: 0.5}
	nat, err := EstimateYesForWindow(params, false, 60, 100)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := EstimateYesForWindow(params, true, 60, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nat+inv-100) > 1e-9 {
		t.Errorf("native %v + inverted %v should sum to n", nat, inv)
	}
}
