// NYC taxi case study (paper §7, case study 1): the distance
// distribution of taxi rides, comparing the privacy-preserving estimate
// against the exact distribution the analyst never gets to see, across
// three privacy budgets.
//
// Run with: go run ./examples/nyctaxi
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"privapprox"
)

const clients = 3000

func main() {
	for _, epsZK := range []float64{1.0, 2.0, 4.0} {
		if err := runOnce(epsZK); err != nil {
			log.Fatal(err)
		}
	}
}

func runOnce(epsZK float64) error {
	q, err := privapprox.TaxiQuery("taxi-analyst", 1, time.Second, 3*time.Second, 3*time.Second)
	if err != nil {
		return err
	}
	// Track the exact per-client latest distances to compute ground
	// truth (only possible because this is a simulation).
	exact := make([]int, len(q.Buckets))
	sys, err := privapprox.NewSystem(privapprox.SystemConfig{
		Clients: clients,
		Query:   q,
		Budget:  &privapprox.Budget{EpsilonZK: epsZK, Q: 0.3},
		Seed:    7,
		Populate: func(i int, db *privapprox.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			if err := privapprox.PopulateTaxi(db, rng, 1, time.Unix(0, 0), time.Minute); err != nil {
				return err
			}
			rows, err := db.Query("SELECT distance FROM rides")
			if err != nil {
				return err
			}
			if idx := q.Buckets.Index(rows.Rows[0][0].String()); idx >= 0 {
				exact[idx]++
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	params := sys.Params()
	ezk, err := params.EpsilonZK()
	if err != nil {
		return err
	}
	fmt.Printf("=== ε_zk budget %.1f → s=%.3f p=%.2f q=%.2f (achieved ε_zk=%.3f) ===\n",
		epsZK, params.S, params.RR.P, params.RR.Q, ezk)

	for epoch := 0; epoch < 3; epoch++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			return err
		}
	}
	results, err := sys.Flush()
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no window fired")
	}
	res := results[0]
	perEpochExact := float64(3) // each client answers every epoch

	fmt.Printf("%-12s %12s %12s %10s\n", "bucket", "exact", "estimate", "loss")
	var meanLoss float64
	var scored int
	for i, b := range res.Buckets {
		exactCount := float64(exact[i]) * perEpochExact
		loss := math.NaN()
		if exactCount > 0 {
			loss = math.Abs(b.Estimate.Estimate-exactCount) / exactCount
			meanLoss += loss
			scored++
		}
		fmt.Printf("%-12s %12.0f %12.1f %9.2f%%\n", b.Label, exactCount, b.Estimate.Estimate, loss*100)
	}
	fmt.Printf("mean accuracy loss: %.2f%% at ε_zk=%.3f\n\n", meanLoss/float64(scored)*100, ezk)
	return nil
}
