// Household electricity case study (paper §7, case study 2): the
// distribution of household consumption over the past 30 minutes,
// computed as an overlapping sliding window that updates every epoch —
// the streaming behaviour of §2.2's query model.
//
// Run with: go run ./examples/electricity
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"privapprox"
)

func main() {
	const clients = 1000
	// Window of 4 epochs sliding by 2: consecutive results share half
	// their data, as in the paper's "update every minute over the last
	// ten minutes" example.
	q, err := privapprox.ElectricityQuery("grid-analyst", 1,
		time.Second, 4*time.Second, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := privapprox.NewSystem(privapprox.SystemConfig{
		Clients: clients,
		Query:   q,
		Budget:  &privapprox.Budget{EpsilonZK: 2.5, Q: 0.6},
		Seed:    11,
		Populate: func(i int, db *privapprox.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			return privapprox.PopulateElectricity(db, rng, 4, time.Unix(0, 0))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	params := sys.Params()
	fmt.Printf("parameters: s=%.3f p=%.2f q=%.2f\n", params.S, params.RR.P, params.RR.Q)

	windows := 0
	for epoch := 0; epoch < 10; epoch++ {
		results, participants, err := sys.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		// Advance the watermark so finished sliding windows fire
		// promptly even between bursts.
		late, err := sys.AdvanceTo(uint64(epoch))
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, late...)
		fmt.Printf("epoch %2d: %4d participants, %d window(s) fired\n",
			epoch, participants, len(results))
		for _, res := range results {
			windows++
			printWindow(res)
		}
	}
	final, err := sys.Flush()
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range final {
		windows++
		printWindow(res)
	}
	fmt.Printf("\n%d sliding windows total\n", windows)
}

func printWindow(res privapprox.Result) {
	fmt.Printf("  window %s→%s (%d answers): ",
		res.Window.Start.Format("05.000"), res.Window.End.Format("05.000"), res.Responses)
	fracs := normalized(res)
	for i, b := range res.Buckets {
		fmt.Printf("%s=%.0f%% ", b.Label, fracs[i]*100)
	}
	fmt.Println()
}

func normalized(res privapprox.Result) []float64 {
	total := 0.0
	for _, b := range res.Buckets {
		total += b.Estimate.Estimate
	}
	out := make([]float64, len(res.Buckets))
	if total == 0 {
		return out
	}
	for i, b := range res.Buckets {
		out[i] = b.Estimate.Estimate / total
	}
	return out
}
