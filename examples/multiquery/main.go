// Multiquery: many analysts, one shared client fleet.
//
// Three analysts run four queries each — twelve concurrent queries over
// the same 150-client population, mixing the taxi-distance and
// household-electricity case studies with different window geometries.
// Queries are signed, registered through the control plane, and
// distributed to clients via the proxies' control topics (paper §3.1);
// the aggregator demultiplexes the shared share stream per query. Mid
// run, one analyst retires a query (its windows flush immediately) and
// submits a replacement, which the fleet picks up at the next epoch —
// no restarts, no per-query infrastructure.
//
// Run with: go run ./examples/multiquery
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"privapprox"
)

func main() {
	const (
		clients = 150
		epochs  = 8
	)

	params := privapprox.Params{S: 0.9, RR: privapprox.RRParams{P: 0.9, Q: 0.6}}
	sys, err := privapprox.NewSystem(privapprox.SystemConfig{
		Clients:    clients,
		Proxies:    3,
		Params:     &params,
		Seed:       7,
		MultiQuery: true,
		Populate: func(i int, db *privapprox.DB) error {
			// Every client holds both case-study tables, so every query
			// finds its data on-device.
			rng := rand.New(rand.NewSource(int64(i) + 1))
			if err := privapprox.PopulateTaxi(db, rng, 3, time.Unix(0, 0), time.Minute); err != nil {
				return err
			}
			return privapprox.PopulateElectricity(db, rng, 4, time.Unix(0, 0))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// 3 analysts × 4 queries: serials 1..4 per analyst, alternating
	// workloads and varying window geometry per serial.
	analysts := []string{"alice", "bob", "carol"}
	var queries []*privapprox.Query
	for _, analyst := range analysts {
		for serial := uint64(1); serial <= 4; serial++ {
			window := time.Duration(2+serial%3) * time.Second
			var q *privapprox.Query
			var err error
			if serial%2 == 0 {
				q, err = privapprox.ElectricityQuery(analyst, serial, time.Second, window, window)
			} else {
				q, err = privapprox.TaxiQuery(analyst, serial, time.Second, window, window)
			}
			if err != nil {
				log.Fatal(err)
			}
			if err := sys.Register(q); err != nil {
				log.Fatal(err)
			}
			queries = append(queries, q)
		}
	}
	fmt.Printf("registered %d queries from %d analysts over %d shared clients\n\n",
		len(queries), len(analysts), clients)

	perQuery := make(map[privapprox.QueryID]int)
	collect := func(results []privapprox.Result) {
		for _, r := range results {
			perQuery[r.Query]++
		}
	}

	for epoch := 0; epoch < epochs; epoch++ {
		results, participants, err := sys.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		collect(results)
		fmt.Printf("epoch %d: %3d/%d clients answered, %2d windows fired\n",
			epoch, participants, clients, len(results))

		if epoch == 3 {
			// Alice retires her first query mid-run…
			flushed, err := sys.StopQuery(queries[0].QID)
			if err != nil {
				log.Fatal(err)
			}
			collect(flushed)
			fmt.Printf("  ↳ stopped %s (flushed %d open windows)\n", queries[0].QID, len(flushed))
			// …and submits a replacement the fleet picks up next epoch.
			repl, err := privapprox.TaxiQuery("alice", 99, time.Second, 2*time.Second, 2*time.Second)
			if err != nil {
				log.Fatal(err)
			}
			if err := sys.Register(repl); err != nil {
				log.Fatal(err)
			}
			queries = append(queries, repl)
			fmt.Printf("  ↳ registered %s\n", repl.QID)
		}
	}
	final, err := sys.Flush()
	if err != nil {
		log.Fatal(err)
	}
	collect(final)

	fmt.Println("\nwindows fired per query:")
	for _, q := range queries {
		fmt.Printf("  %-12s %2d\n", q.QID, perQuery[q.QID])
	}

	st := sys.Aggregator().Stats()
	fmt.Printf("\naggregator: %d answers decoded across %d queries"+
		" (malformed=%d unknown=%d mismatched=%d late=%d)\n",
		st.Decoded, st.Queries, st.Malformed, st.UnknownQuery, st.LengthMismatch, st.Late)

	// One sample result per analyst, for flavor.
	byQuery := privapprox.ByQuery(final)
	for _, analyst := range analysts {
		for _, q := range queries {
			if q.QID.Analyst != analyst || len(byQuery[q.QID]) == 0 {
				continue
			}
			r := byQuery[q.QID][0]
			fmt.Printf("\n%s window [%s → %s): %d answers\n", q.QID,
				r.Window.Start.Format("15:04:05"), r.Window.End.Format("15:04:05"), r.Responses)
			for _, b := range r.Buckets {
				fmt.Printf("  %-12s %8.1f ± %.1f\n", b.Label, b.Estimate.Estimate, b.Estimate.Margin)
			}
			break
		}
	}
}
