// Historical analytics (paper §3.3.1): stream responses are persisted
// in the fault-tolerant response store during the live run; afterwards
// the analyst runs batch queries over past time ranges, with an extra
// round of aggregator-side sampling to fit a batch budget.
//
// Run with: go run ./examples/historical
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"privapprox"
)

func main() {
	const clients = 500
	dir, err := os.MkdirTemp("", "privapprox-hist")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	q, err := privapprox.TaxiQuery("hist-analyst", 1, time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	origin := time.Unix(1_700_000_000, 0)
	params := privapprox.Params{S: 1, RR: privapprox.RRParams{P: 0.9, Q: 0.6}}
	sys, err := privapprox.NewSystem(privapprox.SystemConfig{
		Clients:  clients,
		Query:    q,
		Params:   &params,
		Origin:   origin,
		StoreDir: dir,
		Seed:     3,
		Populate: func(i int, db *privapprox.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			return privapprox.PopulateTaxi(db, rng, 2, time.Unix(0, 0), time.Minute)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Live stream: six epochs, all persisted.
	for epoch := 0; epoch < 6; epoch++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("live run complete; responses persisted to the historical store")

	// Batch analytics over two ranges and two batch budgets.
	aggCfg := privapprox.AggregatorConfig{
		Query:      q,
		Params:     params,
		Population: clients,
		Proxies:    2,
		Origin:     origin,
		Seed:       5,
	}
	src := func(fn func(ts time.Time, payload []byte) error) error {
		_, err := sys.Store().Scan(origin, origin.Add(time.Hour), fn)
		return err
	}
	ranges := []struct {
		name     string
		from, to time.Time
		fraction float64
	}{
		{"all six epochs, full scan", origin, origin.Add(6 * time.Second), 1.0},
		{"first three epochs, full scan", origin, origin.Add(3 * time.Second), 1.0},
		{"all six epochs, 30% batch budget", origin, origin.Add(6 * time.Second), 0.3},
	}
	for _, r := range ranges {
		res, err := privapprox.BatchAnalyze(aggCfg, src, r.from, r.to, r.fraction,
			rand.New(rand.NewSource(9)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: scanned %d, kept %d (second sampling %.0f%%)\n",
			r.name, res.Scanned, res.Kept, res.SecondSampling*100)
		for _, b := range res.Buckets[:4] {
			fmt.Printf("  %-10s %10.1f  [%9.1f, %9.1f]\n",
				b.Label, b.Estimate.Estimate, b.Estimate.Lo(), b.Estimate.Hi())
		}
		fmt.Println("  ... (remaining buckets elided)")
	}
}
