// Query inversion (paper §3.3.2): when very few clients truthfully
// answer "Yes", the native estimate of the "Yes" count has a large
// relative error. Inverting the query — asking for the truthful "No"
// count instead — dramatically reduces the loss for the same privacy
// parameters (the paper reports 2.54% → 0.4% at a 10% "Yes" fraction).
//
// Run with: go run ./examples/inversion
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"privapprox"
)

func main() {
	const clients = 5000
	const rareFraction = 0.10 // 10% of clients are in the rare bucket

	for _, inverted := range []bool{false, true} {
		loss, err := run(inverted, rareFraction, clients)
		if err != nil {
			log.Fatal(err)
		}
		name := "native  "
		target := "truthful-Yes count"
		if inverted {
			name = "inverted"
			target = "truthful-No count"
		}
		fmt.Printf("%s query: accuracy loss %.2f%% (estimating the %s)\n",
			name, loss*100, target)
	}
	fmt.Println("\nthe inverted query rescues utility exactly as §3.3.2 describes")
}

func run(inverted bool, rareFraction float64, clients int) (float64, error) {
	// A two-bucket query: bucket 0 is the rare property.
	buckets, err := privapprox.UniformRanges(0, 2, 2, false)
	if err != nil {
		return 0, err
	}
	q := &privapprox.Query{
		QID:       privapprox.QueryID{Analyst: "inv-analyst", Serial: 1},
		SQL:       "SELECT flag FROM facts",
		Buckets:   buckets,
		Frequency: time.Second,
		Window:    time.Second,
		Slide:     time.Second,
		Inverted:  inverted,
	}
	params := privapprox.Params{S: 0.9, RR: privapprox.RRParams{P: 0.9, Q: 0.6}}
	rareCount := 0
	sys, err := privapprox.NewSystem(privapprox.SystemConfig{
		Clients: clients,
		Query:   q,
		Params:  &params,
		Seed:    17,
		Populate: func(i int, db *privapprox.DB) error {
			if err := db.CreateTable("facts", []string{"flag"}); err != nil {
				return err
			}
			flag := 1.0 // bucket 1: the common case
			if rand.New(rand.NewSource(int64(i))).Float64() < rareFraction {
				flag = 0.0 // bucket 0: the rare property
				rareCount++
			}
			return db.Insert("facts", []privapprox.Value{privapprox.NumberValue(flag)})
		},
	})
	if err != nil {
		return 0, err
	}
	defer sys.Close()

	if _, _, err := sys.RunEpoch(); err != nil {
		return 0, err
	}
	results, err := sys.Flush()
	if err != nil {
		return 0, err
	}
	if len(results) == 0 {
		return 0, fmt.Errorf("no window fired")
	}
	b0 := results[0].Buckets[0]
	actual := float64(rareCount)
	if inverted {
		actual = float64(clients - rareCount)
	}
	return math.Abs(b0.Estimate.Estimate-actual) / actual, nil
}
