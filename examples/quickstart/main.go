// Quickstart: the smallest end-to-end PrivApprox run.
//
// 300 clients hold private taxi rides; an analyst asks for the ride
// distance distribution under a zero-knowledge privacy budget. The
// system derives (s, p, q), clients answer with sampled randomized
// responses through two proxies, and the aggregator prints per-bucket
// estimates with confidence intervals.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"privapprox"
)

func main() {
	const clients = 300
	q, err := privapprox.TaxiQuery("quickstart-analyst", 1,
		time.Second,   // answer frequency f
		4*time.Second, // window w
		4*time.Second, // slide δ
	)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := privapprox.NewSystem(privapprox.SystemConfig{
		Clients: clients,
		Proxies: 2,
		Query:   q,
		Budget:  &privapprox.Budget{EpsilonZK: 2.0, Q: 0.6},
		Seed:    1,
		Populate: func(i int, db *privapprox.DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			return privapprox.PopulateTaxi(db, rng, 3, time.Unix(0, 0), time.Minute)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	params := sys.Params()
	ezk, err := params.EpsilonZK()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initializer derived s=%.3f p=%.2f q=%.2f (ε_zk=%.3f)\n\n",
		params.S, params.RR.P, params.RR.Q, ezk)

	// One full window of epochs, then flush.
	for epoch := 0; epoch < 4; epoch++ {
		results, participants, err := sys.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %d/%d clients participated\n", epoch, participants, clients)
		printResults(results)
	}
	final, err := sys.Flush()
	if err != nil {
		log.Fatal(err)
	}
	printResults(final)
}

func printResults(results []privapprox.Result) {
	for _, res := range results {
		fmt.Printf("\nwindow %s → %s  (%d answers of %d slots)\n",
			res.Window.Start.Format("15:04:05"), res.Window.End.Format("15:04:05"),
			res.Responses, res.Population)
		fmt.Printf("  %-12s %12s %22s\n", "bucket", "estimate", "95% interval")
		for _, b := range res.Buckets {
			fmt.Printf("  %-12s %12.1f   [%9.1f, %9.1f]\n",
				b.Label, b.Estimate.Estimate, b.Estimate.Lo(), b.Estimate.Hi())
		}
	}
}
