// Benchmarks: one testing.B per paper table and figure, plus the
// ablation benches DESIGN.md §5 calls out. Run with
//
//	go test -bench=. -benchmem
//
// The experiments binary (cmd/experiments) prints the full paper-style
// tables; these benchmarks measure the underlying operations so
// regressions in any reproduced result are caught by tooling.
package privapprox

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/answer"
	"privapprox/internal/baseline/rappor"
	"privapprox/internal/baseline/splitx"
	"privapprox/internal/budget"
	"privapprox/internal/core"
	"privapprox/internal/cryptobench"
	"privapprox/internal/minisql"
	"privapprox/internal/pubsub"
	"privapprox/internal/rr"
	"privapprox/internal/sampling"
	"privapprox/internal/workload"
	"privapprox/internal/xorcrypt"
)

// --- Table 1: randomized response utility/privacy per (p, q). ---

func BenchmarkTable1RandomizedResponse(b *testing.B) {
	for _, p := range []float64{0.3, 0.6, 0.9} {
		for _, q := range []float64{0.3, 0.6, 0.9} {
			b.Run(fmt.Sprintf("p=%.1f,q=%.1f", p, q), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				params := rr.Params{P: p, Q: q}
				rz, err := rr.NewRandomizer(params, rng)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rz.Respond(i%5 < 3) // 60% yes stream
				}
				ezk, err := rr.EpsilonZK(0.6, params)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(ezk, "ε_zk@s=0.6")
			})
		}
	}
}

// --- Table 2: crypto operation costs (XOR vs RSA vs GM vs Paillier). ---

func BenchmarkTable2CryptoXOR(b *testing.B) {
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 18)
	// Steady state: scratch-reusing split/join, 0 allocs/op (gated by
	// TestHotPathZeroAllocs).
	b.Run("encrypt", func(b *testing.B) {
		var scratch xorcrypt.SplitScratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := splitter.SplitInto(msg, &scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
	shares, _ := splitter.Split(msg)
	b.Run("decrypt", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := xorcrypt.JoinInto(buf, shares)
			if err != nil {
				b.Fatal(err)
			}
			buf = out
		}
	})
}

func BenchmarkTable2CryptoRSA(b *testing.B) {
	c, err := cryptobench.NewRSACipher(1024, nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 18)
	b.Run("encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Encrypt(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	ct, _ := c.Encrypt(msg)
	b.Run("decrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Decrypt(ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTable2CryptoGoldwasserMicali(b *testing.B) {
	key, err := cryptobench.GenerateGMKey(1024, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 18)
	b.Run("encrypt144bits", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := key.EncryptBits(msg, 144, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	ct, _ := key.EncryptBits(msg, 144, nil)
	b.Run("decrypt144bits", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := key.DecryptBits(ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTable2CryptoPaillier(b *testing.B) {
	key, err := cryptobench.GeneratePaillierKey(1024, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	m := big.NewInt(123456789)
	b.Run("encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := key.Encrypt(m, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	ct, _ := key.Encrypt(m, nil)
	b.Run("decrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := key.Decrypt(ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Table 3: client-side answering pipeline. ---

func BenchmarkTable3ClientDBRead(b *testing.B) {
	db := minisql.NewDB()
	rng := rand.New(rand.NewSource(2))
	if err := workload.PopulateTaxi(db, rng, 50, time.Unix(0, 0), time.Minute); err != nil {
		b.Fatal(err)
	}
	stmt, err := minisql.Parse("SELECT distance FROM rides")
	if err != nil {
		b.Fatal(err)
	}
	sel := stmt.(*minisql.SelectStmt)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryPrepared(sel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ClientRandomizedResponse(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	rz, err := rr.NewRandomizer(rr.Params{P: 0.9, Q: 0.6}, rng)
	if err != nil {
		b.Fatal(err)
	}
	vec, err := answer.OneHot(11, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rz.RespondBits(vec.Bytes(), vec.Len())
	}
}

func BenchmarkTable3ClientXOREncryption(b *testing.B) {
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	vec, _ := answer.OneHot(11, 3)
	raw, err := (&answer.Message{QueryID: 1, Epoch: 0, Answer: vec}).MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	var scratch xorcrypt.SplitScratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := splitter.SplitInto(raw, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 4a/4b/4c: sampling + randomization estimation loop. ---

func BenchmarkFig4aAccuracyVsSampling(b *testing.B) {
	for _, s := range []float64{0.1, 0.6, 0.9} {
		b.Run(fmt.Sprintf("s=%.1f", s), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			params := rr.Params{P: 0.6, Q: 0.6}
			rz, _ := rr.NewRandomizer(params, rng)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if rng.Float64() < s {
					rz.Respond(i%5 < 3)
				}
			}
		})
	}
}

func BenchmarkFig4bErrorDecomposition(b *testing.B) {
	// The estimator pair on a 10k-answer window.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rr.EstimateYes(rr.Params{P: 0.3, Q: 0.6}, 5300, 10000); err != nil {
			b.Fatal(err)
		}
		moments, err := sampling.BinomialMoments(5300, 10000)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sampling.EstimateSumFromMoments(moments, 20000, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4cClients(b *testing.B) {
	for _, n := range []int{100, 10000} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			rz, _ := rr.NewRandomizer(rr.Params{P: 0.9, Q: 0.6}, rng)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				obs := 0
				for c := 0; c < n; c++ {
					if rz.Respond(c%5 < 3) {
						obs++
					}
				}
				if _, err := rr.EstimateYes(rr.Params{P: 0.9, Q: 0.6}, obs, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig 5a: inversion estimators. ---

func BenchmarkFig5aInversion(b *testing.B) {
	params := rr.Params{P: 0.9, Q: 0.6}
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rr.EstimateYes(params, 1500, 10000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inverted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rr.EstimateNo(params, 1500, 10000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Fig 5b: proxy publish path per answer size. ---

func BenchmarkFig5bProxyThroughput(b *testing.B) {
	for _, bits := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			broker := pubsub.NewBroker()
			if err := broker.CreateTopic("answer", 3); err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, answer.EncodedLen(bits))
			key := make([]byte, 16)
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key[0], key[1], key[2] = byte(i), byte(i>>8), byte(i>>16)
				if _, _, err := broker.Publish("answer", key, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig 5c: privacy accounting (PrivApprox vs RAPPOR). ---

func BenchmarkFig5cRAPPOR(b *testing.B) {
	enc, err := rappor.NewEncoder(rappor.Params{K: 32, H: 1, F: 0.5, P: 0.25, Q: 0.75},
		rand.New(rand.NewSource(6)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rappor-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enc.Encode("value")
		}
	})
	b.Run("epsilon-accounting", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rr.EpsilonDPSampled(0.6, rr.Params{P: 0.5, Q: 0.5}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Fig 6: SplitX vs PrivApprox proxy pipelines. ---

func BenchmarkFig6SplitX(b *testing.B) {
	const batch = 2000
	b.Run("privapprox", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := splitx.RunPrivApprox(batch, 32); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch), "answers/batch")
	})
	b.Run("splitx", func(b *testing.B) {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < b.N; i++ {
			if _, err := splitx.RunSplitX(batch, 32, rng); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch), "answers/batch")
	})
}

// --- Fig 7: full case-study pipeline per epoch. ---

func BenchmarkFig7TaxiSweep(b *testing.B) {
	q, err := workload.TaxiQuery("bench", 1, time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	params := budget.Params{S: 0.6, RR: rr.Params{P: 0.9, Q: 0.3}}
	sys, err := core.New(core.Config{
		Clients: 500,
		Query:   q,
		Params:  &params,
		Seed:    8,
		Populate: func(i int, db *minisql.DB) error {
			rng := rand.New(rand.NewSource(int64(i)))
			return workload.PopulateTaxi(db, rng, 2, time.Unix(0, 0), time.Minute)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(500, "clients/epoch")
}

// --- Parallel epoch pipeline: workers × shards sweep. ---

// BenchmarkEpochPipelineParallel measures one full epoch (concurrent
// client answering → proxies → parallel drain → sharded aggregator)
// across worker-pool and aggregator-shard settings. workers=1,shards=1
// is the sequential baseline; workers=GOMAXPROCS should beat it by ≥ 2×
// on a multi-core runner while producing identical results under the
// fixed seed (see core's determinism tests).
func BenchmarkEpochPipelineParallel(b *testing.B) {
	q, err := workload.TaxiQuery("bench", 1, time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	params := budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}}
	maxProcs := runtime.GOMAXPROCS(0)
	sweep := [][2]int{{1, 1}, {2, 2}, {maxProcs, 1}, {maxProcs, maxProcs}}
	seen := map[[2]int]bool{}
	for _, knobs := range sweep {
		if seen[knobs] {
			continue
		}
		seen[knobs] = true
		workers, shards := knobs[0], knobs[1]
		b.Run(fmt.Sprintf("workers=%d,shards=%d", workers, shards), func(b *testing.B) {
			const clients = 1000
			sys, err := core.New(core.Config{
				Clients: clients,
				Query:   q,
				Params:  &params,
				Seed:    12,
				Workers: workers,
				Shards:  shards,
				Populate: func(i int, db *minisql.DB) error {
					rng := rand.New(rand.NewSource(int64(i)))
					return workload.PopulateTaxi(db, rng, 2, time.Unix(0, 0), time.Minute)
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.RunEpoch(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(clients)*float64(b.N)/b.Elapsed().Seconds(), "answers/sec")
		})
	}
}

// BenchmarkMultiQuery sweeps the number of concurrent queries sharing
// one fleet — the shared-fleet amortization the multi-query engine is
// built for. ns/op measures one full epoch (every client answers every
// query); the per-answer metric divides the shared split/transport/join
// machinery over Q queries, so sublinear per-query marginal cost shows
// up as answers/sec falling slower than Q grows. Recorded in
// BENCH_multiquery.json by make bench-json.
func BenchmarkMultiQuery(b *testing.B) {
	params := budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}}
	for _, queries := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("queries=%d", queries), func(b *testing.B) {
			const clients = 500
			sys, err := core.New(core.Config{
				Clients:    clients,
				Params:     &params,
				Seed:       12,
				MultiQuery: true,
				Populate: func(i int, db *minisql.DB) error {
					rng := rand.New(rand.NewSource(int64(i)))
					return workload.PopulateTaxi(db, rng, 2, time.Unix(0, 0), time.Minute)
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			for qi := 0; qi < queries; qi++ {
				q, err := workload.TaxiQuery("bench", uint64(qi+1), time.Second, 2*time.Second, 2*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Register(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.RunEpoch(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			answers := float64(clients) * float64(queries) * float64(b.N)
			b.ReportMetric(answers/b.Elapsed().Seconds(), "answers/sec")
			b.ReportMetric(b.Elapsed().Seconds()/answers*1e9, "ns/answer")
		})
	}
}

// --- Networked transport: TCP batch × connections sweep. ---

// BenchmarkTCPPipeline measures client → TCP proxy share throughput
// over the batched, pipelined transport on loopback. batch=1,conns=1
// is the old one-share-per-round-trip protocol; batch ≥ 256 should beat
// it by ≥ 5× (one frame amortizes hundreds of shares), mirroring the
// netbench experiment in cmd/experiments.
func BenchmarkTCPPipeline(b *testing.B) {
	for _, conns := range []int{1, 4} {
		for _, batch := range []int{1, 64, 256, 1024} {
			b.Run(fmt.Sprintf("batch=%d,conns=%d", batch, conns), func(b *testing.B) {
				broker := pubsub.NewBroker()
				if err := broker.CreateTopic("answer", 4); err != nil {
					b.Fatal(err)
				}
				srv, err := pubsub.Serve(broker, "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				cli, err := pubsub.DialPool(srv.Addr(), conns)
				if err != nil {
					b.Fatal(err)
				}
				defer cli.Close()
				payload := make([]byte, 32)
				key := make([]byte, 16)
				msgs := make([]pubsub.Message, 0, batch)
				b.SetBytes(int64(len(key) + len(payload)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					key[0], key[1], key[2], key[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
					if batch <= 1 {
						if _, _, err := cli.Publish("answer", key, payload); err != nil {
							b.Fatal(err)
						}
						continue
					}
					msgs = append(msgs, pubsub.Message{Key: append([]byte(nil), key...), Value: payload})
					if len(msgs) == batch || i == b.N-1 {
						if _, err := cli.PublishBatch("answer", msgs); err != nil {
							b.Fatal(err)
						}
						msgs = msgs[:0]
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "shares/sec")
			})
		}
	}
}

// --- Fig 8: aggregator hot path (join + decrypt + window). ---

func BenchmarkFig8Scalability(b *testing.B) {
	q, err := workload.TaxiQuery("bench", 1, time.Second, time.Hour, time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	agg, err := aggregator.New(aggregator.Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: 1 << 30,
		Proxies:    2,
		Origin:     time.Unix(0, 0),
		Seed:       9,
	})
	if err != nil {
		b.Fatal(err)
	}
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	vec, _ := answer.OneHot(11, 0)
	raw, err := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	now := time.Now()
	// Scratch reuse across iterations is safe here: with 2 proxies the
	// join group completes (and is consumed) within the iteration, so
	// the aggregator retains no reference into the reused payloads.
	var scratch xorcrypt.SplitScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shares, err := splitter.SplitInto(raw, &scratch)
		if err != nil {
			b.Fatal(err)
		}
		for src, sh := range shares {
			if _, err := agg.SubmitShare(sh, src, now); err != nil {
				b.Fatal(err)
			}
		}
		// Sweep the joiner's replay-suppression set periodically, as a
		// long-lived deployment's epoch timer does — without it the
		// completed-MID map grows monotonically and its bucket growth
		// shows up as phantom B/op in what is a zero-allocation tail
		// (TestFig8SubmitZeroAllocs pins the steady state at exactly 0).
		if i%4096 == 4095 {
			agg.SweepJoins(now.Add(2 * time.Hour))
		}
	}
}

// BenchmarkFig8SubmitBatch is the batch-granular Fig 8: one columnar
// split fans a whole batch into per-proxy lanes, and the aggregator
// consumes each lane through the vectorized join → decrypt → decode →
// accumulate tail. The per-batch-size sweep records the amortization
// frontier (ns/answer vs batch) in BENCH_hotpath.json.
func BenchmarkFig8SubmitBatch(b *testing.B) {
	for _, batch := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			q, err := workload.TaxiQuery("bench", 1, time.Second, time.Hour, time.Hour)
			if err != nil {
				b.Fatal(err)
			}
			agg, err := aggregator.New(aggregator.Config{
				Query:      q,
				Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
				Population: 1 << 30,
				Proxies:    2,
				Origin:     time.Unix(0, 0),
				Seed:       9,
			})
			if err != nil {
				b.Fatal(err)
			}
			splitter, err := xorcrypt.NewSplitter(2, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			vec, _ := answer.OneHot(11, 0)
			raw, err := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			size := len(raw)
			msgs := make([]byte, 0, batch*size)
			for k := 0; k < batch; k++ {
				msgs = append(msgs, raw...)
			}
			shares := make([][]xorcrypt.Share, 2)
			for src := range shares {
				shares[src] = make([]xorcrypt.Share, batch)
			}
			now := time.Now()
			var scratch xorcrypt.SplitBatchScratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cols, err := splitter.SplitBatchInto(msgs, size, batch, &scratch)
				if err != nil {
					b.Fatal(err)
				}
				for src := range shares {
					for k := 0; k < batch; k++ {
						shares[src][k] = cols.Share(src, k)
					}
					if _, err := agg.SubmitShareBatch(shares[src], src, now); err != nil {
						b.Fatal(err)
					}
				}
				if i%64 == 63 {
					agg.SweepJoins(now.Add(2 * time.Hour))
				}
			}
			b.StopTimer()
			answers := float64(batch) * float64(b.N)
			b.ReportMetric(answers/b.Elapsed().Seconds(), "answers/sec")
			b.ReportMetric(b.Elapsed().Seconds()/answers*1e9, "ns/answer")
		})
	}
}

// --- Fig 9: end-to-end epoch cost at different sampling fractions. ---

func BenchmarkFig9Network(b *testing.B) {
	for _, s := range []float64{0.1, 0.6, 1.0} {
		b.Run(fmt.Sprintf("s=%.1f", s), func(b *testing.B) {
			q, err := workload.TaxiQuery("bench", 1, time.Second, 2*time.Second, 2*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			params := budget.Params{S: s, RR: rr.Params{P: 0.9, Q: 0.6}}
			sys, err := core.New(core.Config{
				Clients: 300,
				Query:   q,
				Params:  &params,
				Seed:    10,
				Populate: func(i int, db *minisql.DB) error {
					rng := rand.New(rand.NewSource(int64(i)))
					return workload.PopulateTaxi(db, rng, 2, time.Unix(0, 0), time.Minute)
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.RunEpoch(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := sys.Fleet().TotalStats()
			b.ReportMetric(float64(st.BytesIn)/float64(b.N), "proxy-bytes/epoch")
		})
	}
}

// --- Ablations (DESIGN.md §5). ---

// Ablation: XOR share fan-out n (client-side encryption cost per proxy
// count).
func BenchmarkAblationShareFanout(b *testing.B) {
	msg := make([]byte, 32)
	for _, n := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("proxies=%d", n), func(b *testing.B) {
			splitter, err := xorcrypt.NewSplitter(n, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := splitter.Split(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: AES-CTR vs SHA-256 counter-mode keystream. The PRNG map is
// iterated in sorted key order so the sub-benchmark output order is
// deterministic run to run (map range order is randomized).
func BenchmarkAblationKeystream(b *testing.B) {
	buf := make([]byte, 256)
	aes, err := xorcrypt.NewAESPRNG(nil)
	if err != nil {
		b.Fatal(err)
	}
	sha, err := xorcrypt.NewSHAPRNG(nil)
	if err != nil {
		b.Fatal(err)
	}
	os := xorcrypt.NewCryptoRandPRNG()
	prngs := map[string]xorcrypt.PRNG{"aes-ctr": aes, "sha256-ctr": sha, "os-rand": os}
	names := make([]string, 0, len(prngs))
	for name := range prngs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		prng := prngs[name]
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				if err := prng.Fill(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: window accumulate vs recompute — the incremental
// accumulator against rebuilding the histogram per result.
func BenchmarkAblationWindowAccumulate(b *testing.B) {
	vec, _ := answer.OneHot(11, 4)
	vecs := make([]*answer.BitVector, 1000)
	for i := range vecs {
		vecs[i] = vec.Clone()
	}
	b.Run("incremental", func(b *testing.B) {
		acc, _ := answer.NewAccumulator(11)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := acc.Add(vecs[i%len(vecs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc, _ := answer.NewAccumulator(11)
			for _, v := range vecs[:100] {
				if err := acc.Add(v); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// Ablation: stratified vs simple random sampling estimators.
func BenchmarkAblationStratifiedSampling(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	sample := make([]float64, 1000)
	for i := range sample {
		sample[i] = float64(rng.Intn(2))
	}
	b.Run("srs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sampling.EstimateSum(sample, 10000, 0.95); err != nil {
				b.Fatal(err)
			}
		}
	})
	strata := []sampling.Stratum{
		{Name: "a", Population: 5000, Sample: sample[:500]},
		{Name: "b", Population: 5000, Sample: sample[500:]},
	}
	b.Run("stratified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sampling.EstimateStratifiedSum(strata, 0.95); err != nil {
				b.Fatal(err)
			}
		}
	})
}
