// Overhead benchmarks for the telemetry plane, seeding
// BENCH_telemetry.json: the raw cost of each instrument primitive, and
// the instrumented Fig 8 batch tail side by side with the plain one so
// the "≤ 3% with telemetry enabled" budget is a measured number, not a
// claim.
package privapprox

import (
	"fmt"
	"testing"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/rr"
	"privapprox/internal/telemetry"
	"privapprox/internal/workload"
	"privapprox/internal/xorcrypt"
)

// BenchmarkTelemetryCounter measures one atomic counter increment —
// the cheapest instrument, and the one on the widest paths.
func BenchmarkTelemetryCounter(b *testing.B) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("bench_ops_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkTelemetryHistogram measures one latency observation into the
// sharded fixed-bucket histogram.
func BenchmarkTelemetryHistogram(b *testing.B) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("bench_latency_ns")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)<<6 + 511)
	}
}

// BenchmarkTelemetryTracerRecord measures charging one duration to the
// current epoch's stage cells (totals + the live span slot).
func BenchmarkTelemetryTracerRecord(b *testing.B) {
	tr := telemetry.NewTracer()
	tr.BeginEpoch(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RecordCurrent(telemetry.StageJoin, 1500*time.Nanosecond, 64, 7)
	}
}

// BenchmarkTelemetryGather measures a full snapshot of a registry with
// a realistic instrument population — the cost a /metrics scrape puts
// on a running node (never on the hot path, but worth pinning).
func BenchmarkTelemetryGather(b *testing.B) {
	reg := telemetry.NewRegistry()
	for i := 0; i < 16; i++ {
		reg.Counter(fmt.Sprintf("bench_counter_%d_total", i)).Add(int64(i))
		reg.Gauge(fmt.Sprintf("bench_gauge_%d", i)).Set(int64(i))
	}
	h := reg.Histogram("bench_latency_ns")
	for i := 0; i < 1024; i++ {
		h.Observe(int64(i) << 4)
	}
	tr := telemetry.NewTracer()
	tr.BeginEpoch(1)
	tr.RecordCurrent(telemetry.StageJoin, time.Millisecond, 64, 3)
	reg.RegisterSource(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if samples := reg.Gather(); len(samples) == 0 {
			b.Fatal("empty gather")
		}
	}
}

// BenchmarkFig8SubmitBatchInstrumented is BenchmarkFig8SubmitBatch
// (batch=64) with the telemetry plane attached: an epoch tracer on the
// aggregator timing every SubmitShareBatch, and a publish histogram
// observing each iteration. Compare ns/answer against the plain
// batch=64 run in BENCH_hotpath.json to read off the telemetry
// overhead; the allocgate pins its allocs at 0.
func BenchmarkFig8SubmitBatchInstrumented(b *testing.B) {
	const batch = 64
	q, err := workload.TaxiQuery("bench", 1, time.Second, time.Hour, time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	agg, err := aggregator.New(aggregator.Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: 1 << 30,
		Proxies:    2,
		Origin:     time.Unix(0, 0),
		Seed:       9,
	})
	if err != nil {
		b.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer()
	tracer.BeginEpoch(0)
	agg.SetTracer(tracer)
	reg.RegisterSource(agg)
	reg.RegisterSource(tracer)
	hist := reg.Histogram("privapprox_publish_ns")

	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	vec, _ := answer.OneHot(11, 0)
	raw, err := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	size := len(raw)
	msgs := make([]byte, 0, batch*size)
	for k := 0; k < batch; k++ {
		msgs = append(msgs, raw...)
	}
	shares := make([][]xorcrypt.Share, 2)
	for src := range shares {
		shares[src] = make([]xorcrypt.Share, batch)
	}
	now := time.Now()
	var scratch xorcrypt.SplitBatchScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		cols, err := splitter.SplitBatchInto(msgs, size, batch, &scratch)
		if err != nil {
			b.Fatal(err)
		}
		for src := range shares {
			for k := 0; k < batch; k++ {
				shares[src][k] = cols.Share(src, k)
			}
			if _, err := agg.SubmitShareBatch(shares[src], src, now); err != nil {
				b.Fatal(err)
			}
		}
		hist.Observe(int64(time.Since(t0)))
		if i%64 == 63 {
			agg.SweepJoins(now.Add(2 * time.Hour))
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/answer")
}
