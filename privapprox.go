// Package privapprox is a Go implementation of PrivApprox
// ("PrivApprox: Privacy-Preserving Stream Analytics", Quoc, Beck,
// Bhatotia, Chen, Fetzer, Strufe — USENIX ATC 2017): a distributed
// system for privacy-preserving, low-latency analytics over user data
// that never leaves the users' devices.
//
// The system marries two approximation techniques:
//
//   - Sampling at the data source: each client flips a coin with
//     probability s to decide whether to answer a query in the current
//     epoch, giving low latency and an error bound from classical SRS
//     theory.
//   - Randomized response: participating clients perturb every answer
//     bit with the two-coin mechanism (p, q), giving ε-differential
//     privacy locally — and, combined with sampling, the strictly
//     stronger zero-knowledge privacy guarantee.
//
// Answers travel as XOR-encrypted shares through at least two
// non-colluding proxies, so no component can link answers to clients;
// the aggregator joins shares by message identifier, decrypts, and runs
// sliding-window aggregation with a confidence interval that combines
// the sampling and randomization error bounds.
//
// The epoch pipeline is parallel end-to-end: clients answer on a
// bounded worker pool (SystemConfig.Workers, default GOMAXPROCS), each
// proxy is drained by its own goroutine, and the aggregator's join and
// window state is sharded by message-ID hash (SystemConfig.Shards).
// Under a fixed SystemConfig.Seed, results are byte-identical for every
// Workers/Shards setting — tune the knobs for the hardware, not for the
// answer. (One caveat: with StoreDir set, the historical store's
// record *order* within an epoch is scheduling-dependent when
// Workers > 1, so BatchAnalyze runs whose second-round sampling must be
// replayable record-for-record should produce the store with
// Workers == 1.)
//
//	sys, _ := privapprox.NewSystem(privapprox.SystemConfig{
//		Clients: 1_000_000,
//		Query:   q,
//		Budget:  &privapprox.Budget{EpsilonZK: 2.0},
//		Workers: 16, // client fan-out per epoch (0 = GOMAXPROCS)
//		Shards:  16, // aggregator lock shards (0 = GOMAXPROCS)
//	})
//
// The same pipeline also runs as separate processes — clients, proxies,
// and aggregator communicating over a batched, pipelined TCP transport
// (one publish frame per epoch per proxy) — via cmd/privapprox-node,
// producing results identical to the in-process system under the same
// seed. See DESIGN.md §2 and §4.
//
// # Quick start
//
//	q, _ := privapprox.TaxiQuery("analyst", 1, time.Second, 10*time.Second, time.Second)
//	sys, _ := privapprox.NewSystem(privapprox.SystemConfig{
//		Clients: 1000,
//		Query:   q,
//		Budget:  &privapprox.Budget{EpsilonZK: 2.0},
//		Populate: func(i int, db *privapprox.DB) error {
//			return privapprox.PopulateTaxi(db, nil, 5, time.Now(), time.Minute)
//		},
//	})
//	defer sys.Close()
//	for epoch := 0; epoch < 10; epoch++ {
//		results, _, _ := sys.RunEpoch()
//		for _, r := range results { fmt.Println(r.Window, r.Buckets) }
//	}
//
// See the examples directory for runnable programs and DESIGN.md for
// the architecture and the paper-experiment index.
package privapprox

import (
	"math/rand"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/core"
	"privapprox/internal/histstore"
	"privapprox/internal/minisql"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/stats"
	"privapprox/internal/workload"
)

// Core query-model types (paper §2.2, §3.1).
type (
	// Query is the analyst's streaming query ⟨QID, SQL, A[n], f, w, δ⟩.
	Query = query.Query
	// QueryID identifies a query: analyst name plus serial number.
	QueryID = query.ID
	// Buckets is the ordered answer-bucket set A[n].
	Buckets = query.Buckets
	// RangeBucket matches numeric values in [Lo, Hi).
	RangeBucket = query.RangeBucket
	// SignedQuery carries the analyst's ed25519 signature.
	SignedQuery = query.Signed
)

// System parameters and budgets (paper §3.1, §5).
type (
	// Budget is the analyst's execution budget; the initializer converts
	// it into system parameters.
	Budget = budget.Budget
	// Params is the derived triple: sampling fraction s plus the
	// randomization pair (p, q).
	Params = budget.Params
	// RRParams is the randomized response coin pair.
	RRParams = rr.Params
)

// Results (paper §3.2.4).
type (
	// Result is one fired window with per-bucket estimates, tagged with
	// the query it belongs to.
	Result = aggregator.Result
	// BucketEstimate is a per-bucket count with its confidence interval.
	BucketEstimate = aggregator.BucketEstimate
	// BatchResult is a historical (batch) analytics result.
	BatchResult = aggregator.BatchResult
	// ConfidenceInterval is Estimate ± Margin at a confidence level.
	ConfidenceInterval = stats.ConfidenceInterval
	// AggregatorStats is the aggregator's message accounting, including
	// the multi-query demux drop counters.
	AggregatorStats = aggregator.Stats
)

// ByQuery splits a merged result stream into per-query streams — the
// companion to SystemConfig.MultiQuery, under which one System runs
// many analysts' queries concurrently over the same client fleet (see
// System.Register, System.RegisterSigned, and System.StopQuery).
func ByQuery(results []Result) map[QueryID][]Result { return aggregator.ByQuery(results) }

// Deployment types.
type (
	// System is a wired in-process deployment: clients, proxies,
	// aggregator.
	System = core.System
	// SystemConfig assembles a System.
	SystemConfig = core.Config
	// DB is the embedded SQL database clients store private data in.
	DB = minisql.DB
	// Value is one dynamically typed database cell.
	Value = minisql.Value
	// HistStore is the on-disk response store for historical analytics.
	HistStore = histstore.Store
)

// NewSystem wires a complete in-process PrivApprox deployment: the
// initializer derives (s, p, q) from the budget, the query is signed,
// clients are populated and subscribed, and the proxy fleet and
// aggregator are started.
func NewSystem(cfg SystemConfig) (*System, error) { return core.New(cfg) }

// NewDB returns an empty client-side database.
func NewDB() *DB { return minisql.NewDB() }

// NumberValue wraps a float as a database cell.
func NumberValue(f float64) Value { return minisql.Number(f) }

// TextValue wraps a string as a database cell.
func TextValue(s string) Value { return minisql.Text(s) }

// UniformRanges builds n equal-width numeric buckets over [lo, hi),
// optionally with a trailing overflow bucket.
func UniformRanges(lo, hi float64, n int, overflow bool) (Buckets, error) {
	return query.UniformRanges(lo, hi, n, overflow)
}

// EpsilonDP returns the differential privacy level of the randomized
// response parameters (paper Eq. 8).
func EpsilonDP(p RRParams) (float64, error) { return rr.EpsilonDP(p) }

// EpsilonZK returns the zero-knowledge privacy level of the combined
// sampling + randomized response mechanism (technical report Eq. 19;
// the quantity Table 1 and Fig. 7b report).
func EpsilonZK(s float64, p RRParams) (float64, error) { return rr.EpsilonZK(s, p) }

// EpsilonDPSampled returns the subsampling-amplified differential
// privacy level (the Fig. 5c comparison quantity).
func EpsilonDPSampled(s float64, p RRParams) (float64, error) { return rr.EpsilonDPSampled(s, p) }

// SamplingForEpsilonZK inverts EpsilonZK: the sampling fraction that
// achieves a target zero-knowledge level at fixed (p, q).
func SamplingForEpsilonZK(epsZK float64, p RRParams) (float64, error) {
	return rr.SamplingForEpsilonZK(epsZK, p)
}

// BatchAnalyze runs a historical query over stored responses with an
// extra round of aggregator-side sampling (paper §3.3.1).
func BatchAnalyze(cfg aggregator.Config, src aggregator.AnswerSource, from, to time.Time, secondSampling float64, rng *rand.Rand) (BatchResult, error) {
	return aggregator.BatchAnalyze(cfg, src, from, to, secondSampling, rng)
}

// AggregatorConfig configures standalone aggregation (used by
// BatchAnalyze and the networked binaries).
type AggregatorConfig = aggregator.Config

// Case-study workloads (paper §7).

// TaxiQuery builds the NYC-taxi case study query.
func TaxiQuery(analyst string, serial uint64, freq, window, slide time.Duration) (*Query, error) {
	return workload.TaxiQuery(analyst, serial, freq, window, slide)
}

// PopulateTaxi fills a client database with synthetic taxi rides. A nil
// rng draws a random seed.
func PopulateTaxi(db *DB, rng *rand.Rand, rides int, start time.Time, interval time.Duration) error {
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	return workload.PopulateTaxi(db, rng, rides, start, interval)
}

// ElectricityQuery builds the household-electricity case study query.
func ElectricityQuery(analyst string, serial uint64, freq, window, slide time.Duration) (*Query, error) {
	return workload.ElectricityQuery(analyst, serial, freq, window, slide)
}

// PopulateElectricity fills a client database with synthetic household
// readings. A nil rng draws a random seed.
func PopulateElectricity(db *DB, rng *rand.Rand, readings int, start time.Time) error {
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	return workload.PopulateElectricity(db, rng, readings, start)
}
