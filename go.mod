module privapprox

go 1.24
