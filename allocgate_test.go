// The allocs/op regression gate for the share hot path. The paper's
// performance argument (Table 2, Fig. 8) rests on the per-answer
// pipeline being XOR-cheap; these gates pin the steady state of every
// hot-path stage at zero allocations per operation so a regression
// shows up as a test failure, not as a slow drift back into the Go
// allocator. Run as part of `make ci` (the allocgate target and the
// plain test target both cover it).
package privapprox

import (
	"math/rand"
	"testing"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/rr"
	"privapprox/internal/telemetry"
	"privapprox/internal/workload"
	"privapprox/internal/xorcrypt"
)

// gate asserts a steady-state zero-allocation contract.
func gate(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm up scratch buffers; steady state is what's gated
	if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, allocs)
	}
}

func TestHotPathZeroAllocs(t *testing.T) {
	// Client split (Table 3 / Table 2 encrypt).
	splitter, err := xorcrypt.NewSplitter(3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 32)
	var scratch xorcrypt.SplitScratch
	gate(t, "xorcrypt.SplitInto", func() {
		if _, err := splitter.SplitInto(msg, &scratch); err != nil {
			t.Fatal(err)
		}
	})

	// Aggregator join (Table 2 decrypt), share- and payload-level.
	shares, err := splitter.Split(msg)
	if err != nil {
		t.Fatal(err)
	}
	var joinBuf []byte
	gate(t, "xorcrypt.JoinInto", func() {
		out, err := xorcrypt.JoinInto(joinBuf, shares)
		if err != nil {
			t.Fatal(err)
		}
		joinBuf = out
	})
	payloads := make([][]byte, len(shares))
	for i, sh := range shares {
		payloads[i] = sh.Payload
	}
	gate(t, "xorcrypt.JoinPayloadsInto", func() {
		out, err := xorcrypt.JoinPayloadsInto(joinBuf, payloads)
		if err != nil {
			t.Fatal(err)
		}
		joinBuf = out
	})

	// Batch split/join — the wire-v2 columnar kernels.
	const bcount = 16
	bmsgs := make([]byte, bcount*len(msg))
	var bscratch xorcrypt.SplitBatchScratch
	gate(t, "xorcrypt.SplitBatchInto", func() {
		if _, err := splitter.SplitBatchInto(bmsgs, len(msg), bcount, &bscratch); err != nil {
			t.Fatal(err)
		}
	})
	cols, err := splitter.SplitBatchInto(bmsgs, len(msg), bcount, &bscratch)
	if err != nil {
		t.Fatal(err)
	}
	gate(t, "xorcrypt.JoinColumnsInto", func() {
		out, err := xorcrypt.JoinColumnsInto(joinBuf, cols.Lanes)
		if err != nil {
			t.Fatal(err)
		}
		joinBuf = out
	})

	// Randomized response over a packed answer vector (Table 3).
	rz, err := rr.NewRandomizer(rr.Params{P: 0.9, Q: 0.6}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	vec, err := answer.OneHot(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	gate(t, "rr.RespondBits", func() {
		rz.RespondBits(vec.Bytes(), vec.Len())
	})

	// Batch randomized response over a packed answer lane: 16 slots of
	// 11 bits at the wire stride.
	const nbits = 11
	stride := answer.EncodedLen(nbits) - answer.HeaderLen
	lane := make([]byte, bcount*stride)
	gate(t, "rr.RespondBitsBatch", func() {
		rz.RespondBitsBatch(lane, stride, nbits, bcount)
	})

	// Window accumulation (Fig. 8).
	acc, err := answer.NewAccumulator(11)
	if err != nil {
		t.Fatal(err)
	}
	gate(t, "answer.Accumulator.Add", func() {
		if err := acc.Add(vec); err != nil {
			t.Fatal(err)
		}
	})
	gate(t, "answer.Accumulator.AddBatch", func() {
		if err := acc.AddBatch(lane, stride, nbits, bcount); err != nil {
			t.Fatal(err)
		}
	})

	// Columnar batch encode: one fixed-stride lane per epoch flush.
	var enc answer.BatchEncoder
	bm := answer.Message{QueryID: 1, Epoch: 2, Answer: vec}
	gate(t, "answer.BatchEncoder.Append", func() {
		enc.Reset()
		for k := 0; k < 4; k++ {
			if err := enc.Append(&bm); err != nil {
				t.Fatal(err)
			}
		}
	})

	// Message encode + zero-copy decode (the wire legs between them).
	m := answer.Message{QueryID: 1, Epoch: 2, Answer: vec}
	var wire []byte
	gate(t, "answer.Message.AppendBinary", func() {
		out, err := m.AppendBinary(wire[:0])
		if err != nil {
			t.Fatal(err)
		}
		wire = out
	})
	var decoded answer.Message
	var view answer.BitVector
	gate(t, "answer.Message.UnmarshalBinaryView", func() {
		if err := decoded.UnmarshalBinaryView(wire, &view); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAggregatorSubmitSteadyStateAllocs bounds the full join → decrypt
// → decode → accumulate tail. It cannot be exactly zero — the joiner's
// replay-suppression set records every completed MID until a sweep, and
// window bookkeeping fires occasionally — but steady state must stay
// within a small constant, an order of magnitude under the seed's 16
// allocs/op.
func TestAggregatorSubmitSteadyStateAllocs(t *testing.T) {
	q, err := workload.TaxiQuery("gate", 1, time.Second, time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := aggregator.New(aggregator.Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: 1 << 20,
		Proxies:    2,
		Origin:     time.Unix(0, 0),
		Seed:       9,
		Shards:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	vec, _ := answer.OneHot(11, 0)
	raw, err := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(10, 0)
	var scratch xorcrypt.SplitScratch
	submit := func() {
		shares, err := splitter.SplitInto(raw, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		for src, sh := range shares {
			if _, err := agg.SubmitShare(sh, src, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	submit()
	if allocs := testing.AllocsPerRun(200, submit); allocs > 4 {
		t.Errorf("aggregator submit tail: %v allocs per message, want ≤ 4", allocs)
	}
}

// TestAggregatorMultiQuerySubmitAllocs holds the same steady-state
// budget with several active queries: the demux by wire QueryID (one
// atomic state-table load plus a map lookup) must not put the submit
// tail back in the allocator.
func TestAggregatorMultiQuerySubmitAllocs(t *testing.T) {
	agg, err := aggregator.NewMulti(aggregator.Config{
		Population: 1 << 20,
		Proxies:    2,
		Origin:     time.Unix(0, 0),
		Seed:       9,
		Shards:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const queries = 4
	wires := make([]uint64, queries)
	for i := 0; i < queries; i++ {
		q, err := workload.TaxiQuery("gate", uint64(i+1), time.Second, time.Hour, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.AddQuery(aggregator.QuerySpec{
			Query:  q,
			Params: budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		}); err != nil {
			t.Fatal(err)
		}
		wires[i] = q.QID.Uint64()
	}
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	vec, _ := answer.OneHot(11, 0)
	raws := make([][]byte, queries)
	for i, wire := range wires {
		raw, err := (&answer.Message{QueryID: wire, Epoch: 0, Answer: vec}).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
	}
	now := time.Unix(10, 0)
	var scratch xorcrypt.SplitScratch
	next := 0
	submit := func() {
		// Round-robin the queries so every message demuxes to a
		// different per-query state.
		raw := raws[next%queries]
		next++
		shares, err := splitter.SplitInto(raw, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		for src, sh := range shares {
			if _, err := agg.SubmitShare(sh, src, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < queries; i++ {
		submit() // warm every query's window state
	}
	if allocs := testing.AllocsPerRun(200, submit); allocs > 4 {
		t.Errorf("multi-query aggregator submit tail: %v allocs per message, want ≤ 4", allocs)
	}
}

// TestFig8SubmitZeroAllocs pins BenchmarkFig8Scalability's loop shape —
// split + two per-share submits, with the joiner's replay-suppression
// set swept periodically as an epoch timer would — at exactly zero
// steady-state allocations per message. Without the sweep the
// completed-MID map grows monotonically and its bucket growth leaks
// back in as phantom B/op.
func TestFig8SubmitZeroAllocs(t *testing.T) {
	q, err := workload.TaxiQuery("gate", 1, time.Second, time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := aggregator.New(aggregator.Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: 1 << 20,
		Proxies:    2,
		Origin:     time.Unix(0, 0),
		Seed:       9,
		Shards:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	vec, _ := answer.OneHot(11, 0)
	raw, err := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(10, 0)
	var scratch xorcrypt.SplitScratch
	n := 0
	submit := func() {
		shares, err := splitter.SplitInto(raw, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		for src, sh := range shares {
			if _, err := agg.SubmitShare(sh, src, now); err != nil {
				t.Fatal(err)
			}
		}
		n++
		if n%64 == 0 {
			agg.SweepJoins(now.Add(2 * time.Hour))
		}
	}
	// Warm past several sweep cycles so the join maps reach their
	// steady-state footprint.
	for i := 0; i < 256; i++ {
		submit()
	}
	if allocs := testing.AllocsPerRun(200, submit); allocs != 0 {
		t.Errorf("Fig 8 submit tail: %v allocs per message, want 0", allocs)
	}
}

// TestAggregatorSubmitBatchZeroAllocs holds the vectorized tail — one
// columnar split plus one SubmitShareBatch per proxy lane, sweeping
// periodically — at exactly zero steady-state allocations per batch.
func TestAggregatorSubmitBatchZeroAllocs(t *testing.T) {
	q, err := workload.TaxiQuery("gate", 1, time.Second, time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := aggregator.New(aggregator.Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: 1 << 20,
		Proxies:    2,
		Origin:     time.Unix(0, 0),
		Seed:       9,
		Shards:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	vec, _ := answer.OneHot(11, 0)
	raw, err := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const batch = 64
	size := len(raw)
	msgs := make([]byte, 0, batch*size)
	for k := 0; k < batch; k++ {
		msgs = append(msgs, raw...)
	}
	shares := make([][]xorcrypt.Share, 2)
	for src := range shares {
		shares[src] = make([]xorcrypt.Share, batch)
	}
	now := time.Unix(10, 0)
	var scratch xorcrypt.SplitBatchScratch
	n := 0
	submit := func() {
		cols, err := splitter.SplitBatchInto(msgs, size, batch, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		for src := range shares {
			for k := 0; k < batch; k++ {
				shares[src][k] = cols.Share(src, k)
			}
			if _, err := agg.SubmitShareBatch(shares[src], src, now); err != nil {
				t.Fatal(err)
			}
		}
		n++
		if n%4 == 0 {
			agg.SweepJoins(now.Add(2 * time.Hour))
		}
	}
	for i := 0; i < 16; i++ {
		submit()
	}
	if allocs := testing.AllocsPerRun(50, submit); allocs != 0 {
		t.Errorf("batch submit tail: %v allocs per batch, want 0", allocs)
	}
}

// TestFig8TelemetryZeroAllocs re-runs both Fig 8 tail shapes — the
// per-share loop and the vectorized batch loop — with the telemetry
// plane fully attached: an epoch tracer on the aggregator (so every
// SubmitShareBatch is timed and charged to the join stage) and a live
// publish histogram observing each batch. The zero-allocation contract
// must hold with instrumentation enabled, not just with the hooks left
// nil — this is the gate behind the "≤ 3% overhead, 0 allocs" telemetry
// budget.
func TestFig8TelemetryZeroAllocs(t *testing.T) {
	q, err := workload.TaxiQuery("gate", 1, time.Second, time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := aggregator.New(aggregator.Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: 1 << 20,
		Proxies:    2,
		Origin:     time.Unix(0, 0),
		Seed:       9,
		Shards:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer()
	tracer.BeginEpoch(0)
	agg.SetTracer(tracer)
	reg.RegisterSource(agg)
	reg.RegisterSource(tracer)
	hist := reg.Histogram("privapprox_publish_ns")

	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	vec, _ := answer.OneHot(11, 0)
	raw, err := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const batch = 64
	size := len(raw)
	msgs := make([]byte, 0, batch*size)
	for k := 0; k < batch; k++ {
		msgs = append(msgs, raw...)
	}
	shares := make([][]xorcrypt.Share, 2)
	for src := range shares {
		shares[src] = make([]xorcrypt.Share, batch)
	}
	now := time.Unix(10, 0)
	var scratch xorcrypt.SplitBatchScratch
	n := 0
	submit := func() {
		t0 := time.Now()
		cols, err := splitter.SplitBatchInto(msgs, size, batch, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		for src := range shares {
			for k := 0; k < batch; k++ {
				shares[src][k] = cols.Share(src, k)
			}
			if _, err := agg.SubmitShareBatch(shares[src], src, now); err != nil {
				t.Fatal(err)
			}
		}
		hist.Observe(int64(time.Since(t0)))
		n++
		if n%4 == 0 {
			agg.SweepJoins(now.Add(2 * time.Hour))
		}
	}
	for i := 0; i < 16; i++ {
		submit()
	}
	if allocs := testing.AllocsPerRun(50, submit); allocs != 0 {
		t.Errorf("instrumented batch submit tail: %v allocs per batch, want 0", allocs)
	}

	// A concurrent scrape must not perturb the hot tail's contract:
	// gather once mid-run and re-check.
	if s := reg.Gather(); len(s) == 0 {
		t.Fatal("registry gathered no samples")
	}
	if allocs := testing.AllocsPerRun(50, submit); allocs != 0 {
		t.Errorf("instrumented batch submit tail after scrape: %v allocs per batch, want 0", allocs)
	}
}
